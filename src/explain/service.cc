#include "explain/service.h"

#include <algorithm>
#include <cstring>
#include <utility>

#include "core/engine.h"

namespace dcam {
namespace explain {
namespace {

// Content equality of two (D, n) series; the guard that makes the 64-bit
// series hash in CacheKey collision-proof.
bool SameSeries(const Tensor& a, const Tensor& b) {
  if (a.data() == b.data()) return a.shape() == b.shape();
  if (a.shape() != b.shape()) return false;
  return std::memcmp(a.data(), b.data(),
                     static_cast<size_t>(a.size()) * sizeof(float)) == 0;
}

}  // namespace

size_t ExplainService::CacheKeyHash::operator()(const CacheKey& k) const {
  uint64_t h = kFnvOffset;
  h = HashBytes(k.model_id.data(), k.model_id.size(), h);
  h = HashBytes(k.method.data(), k.method.size(), h);
  h = HashBytes(&k.series_hash, sizeof k.series_hash, h);
  h = HashBytes(&k.options_digest, sizeof k.options_digest, h);
  return static_cast<size_t>(h);
}

ExplainService::ExplainService() : ExplainService(Config()) {}

ExplainService::ExplainService(Config config)
    : config_(config), cache_(config.cache_capacity) {
  DCAM_CHECK_GE(config_.engine_batch, 0);
  DCAM_CHECK_GE(config_.max_coalesce, 1);
  scheduler_ = std::thread([this] { SchedulerLoop(); });
}

ExplainService::~ExplainService() { Shutdown(); }

void ExplainService::RegisterModel(const std::string& id,
                                   models::Model* model) {
  DCAM_CHECK(model != nullptr);
  DCAM_CHECK(!id.empty()) << "model id must be non-empty";
  std::lock_guard<std::mutex> lock(mu_);
  DCAM_CHECK_EQ(models_.count(id), 0u)
      << "model id \"" << id << "\" already registered";
  models_[id] = model;
}

std::future<ExplanationResult> ExplainService::Submit(ExplainRequest request) {
  DCAM_CHECK_EQ(request.series.rank(), 2)
      << "request series must be a (D, n) tensor";
  Explainer* proto;
  {
    std::lock_guard<std::mutex> lock(prototypes_mu_);
    auto it = prototypes_.find(request.method);
    if (it == prototypes_.end()) {
      // CHECK-fails on unknown method names, on the submitting thread.
      it = prototypes_
               .emplace(request.method, MakeExplainer(request.method))
               .first;
    }
    proto = it->second.get();
  }

  // Reject unsupported (method, model) pairings here, on the submitting
  // thread — a CHECK on the scheduler thread would take every other
  // client's in-flight request down with it. Supports is const and reads
  // only immutable model configuration, so probing while the scheduler
  // forwards the same model is safe; the verdict is memoized per
  // (method, model, series shape) because the dCAM probe materializes a
  // (1, D, D, n) cube, far too expensive for the per-request path.
  models::Model* model = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = models_.find(request.model_id);
    DCAM_CHECK(it != models_.end()) << "unknown model id \""
                                    << request.model_id
                                    << "\" (RegisterModel first)";
    model = it->second;
  }
  bool supported;
  {
    const SupportsKey key{request.method, model, request.series.dim(0),
                          request.series.dim(1)};
    std::lock_guard<std::mutex> lock(prototypes_mu_);
    auto it = supports_.find(key);
    if (it == supports_.end()) {
      it = supports_.emplace(key, proto->Supports(*model, request.series))
               .first;
    }
    supported = it->second;
  }
  DCAM_CHECK(supported)
      << "method \"" << request.method << "\" does not support model \""
      << request.model_id << "\" (" << model->name() << ") for a ("
      << request.series.dim(0) << ", " << request.series.dim(1) << ") series";

  Pending p;
  p.request = std::move(request);
  p.dedupable = proto->Deterministic();
  p.cacheable = p.dedupable && config_.cache_capacity > 0;
  p.key.model_id = p.request.model_id;
  p.key.method = p.request.method;
  p.key.series_hash = HashTensor(p.request.series);
  p.key.options_digest =
      proto->OptionsDigest(p.request.class_idx, p.request.options);
  std::future<ExplanationResult> future = p.promise.get_future();
  {
    std::lock_guard<std::mutex> lock(mu_);
    DCAM_CHECK(!stop_) << "Submit after Shutdown";
    ++stats_.requests;
    queue_.push_back(std::move(p));
  }
  cv_.notify_one();
  return future;
}

ExplanationResult ExplainService::Explain(ExplainRequest request) {
  return Submit(std::move(request)).get();
}

void ExplainService::Drain() {
  std::unique_lock<std::mutex> lock(mu_);
  drained_cv_.wait(lock, [&] { return queue_.empty() && in_flight_ == 0; });
}

void ExplainService::Shutdown() {
  // Claim the thread handle under the lock so concurrent Shutdown calls
  // (say, an explicit call racing the destructor) cannot both join it; the
  // caller that loses the claim must still wait for the scheduler to exit,
  // otherwise a racing destructor could free the members under it.
  std::thread claimed;
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
    claimed.swap(scheduler_);
  }
  cv_.notify_all();
  if (claimed.joinable()) {
    claimed.join();
    {
      std::lock_guard<std::mutex> lock(mu_);
      scheduler_exited_ = true;
    }
    drained_cv_.notify_all();
  } else {
    std::unique_lock<std::mutex> lock(mu_);
    drained_cv_.wait(lock, [&] { return scheduler_exited_; });
  }
}

ExplainService::Stats ExplainService::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void ExplainService::SchedulerLoop() {
  for (;;) {
    std::vector<Pending> batch;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [&] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stop_) return;
        continue;
      }
      batch.swap(queue_);
      in_flight_ = batch.size();
    }
    Process(std::move(batch));
    {
      std::lock_guard<std::mutex> lock(mu_);
      in_flight_ = 0;
      stats_.evictions = cache_.evictions();
    }
    drained_cv_.notify_all();
  }
}

Explainer* ExplainService::ExplainerFor(const std::string& method,
                                        models::Model* model) {
  auto key = std::make_pair(method, model);
  auto it = workers_.find(key);
  if (it == workers_.end()) {
    it = workers_.emplace(std::move(key), MakeExplainer(method)).first;
  }
  return it->second.get();
}

void ExplainService::Fulfill(Pending* p, const ExplanationResult& result) {
  {
    // Count before waking the client: a caller returning from future.get()
    // must observe its own request in stats().completed.
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.completed;
  }
  // Every client gets a private copy of the map: Tensor copies share
  // storage, so handing the scheduler's buffer out would let one client's
  // in-place edit poison the cache and every deduped sibling.
  ExplanationResult owned = result;
  if (!owned.map.empty()) owned.map = owned.map.Clone();
  p->promise.set_value(std::move(owned));
}

void ExplainService::ProcessDcamGroup(models::Model* model,
                                      std::vector<Pending*>* group,
                                      const CompleteFn& complete) {
  auto* gap = dynamic_cast<models::GapModel*>(model);
  DCAM_CHECK(gap != nullptr)
      << "\"dcam\" requests need a GAP-headed d-architecture model, got "
      << model->name();
  auto engine_it = engines_.find(model);
  if (engine_it == engines_.end()) {
    core::DcamEngine::Config cfg;
    cfg.batch = config_.engine_batch;
    engine_it =
        engines_.emplace(model, std::make_unique<core::DcamEngine>(gap, cfg))
            .first;
  }
  core::DcamEngine* engine = engine_it->second.get();

  // Chunks bound the number of live (D, D, n) accumulators; within a chunk
  // ComputeMany packs permutation batches across the requests.
  const size_t n = group->size();
  for (size_t begin = 0; begin < n;
       begin += static_cast<size_t>(config_.max_coalesce)) {
    const size_t end =
        std::min(n, begin + static_cast<size_t>(config_.max_coalesce));
    std::vector<Tensor> series;
    std::vector<int> classes;
    std::vector<core::DcamOptions> options;
    series.reserve(end - begin);
    for (size_t i = begin; i < end; ++i) {
      Pending* p = (*group)[i];
      series.push_back(p->request.series);
      classes.push_back(p->request.class_idx);
      core::DcamOptions opts = p->request.options.dcam;
      opts.keep_mbar = false;  // match the "dcam" adapter exactly
      options.push_back(opts);
    }
    const std::vector<core::DcamResult> results =
        engine->ComputeMany(series, classes, options);
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.coalesced_batches;
      stats_.coalesced_requests += end - begin;
      stats_.max_coalesce = std::max(stats_.max_coalesce,
                                     static_cast<uint64_t>(end - begin));
    }
    for (size_t i = begin; i < end; ++i) {
      Pending* p = (*group)[i];
      ExplanationResult out;
      out.map = results[i - begin].dcam;
      out.k = results[i - begin].k;
      out.num_correct = results[i - begin].num_correct;
      complete(p, out);
    }
  }
}

void ExplainService::Process(std::vector<Pending> batch) {
  // 1. Cache probe, and dedupe of identical in-flight misses: the first
  // occurrence of a key computes, the rest wait for its result. Both paths
  // verify actual series contents — the key's 64-bit hash alone must never
  // decide what a client receives.
  std::vector<Pending*> misses;
  std::unordered_map<CacheKey, std::vector<Pending*>, CacheKeyHash> dupes;
  for (Pending& p : batch) {
    if (p.cacheable) {
      const CacheEntry* hit = cache_.Get(p.key);
      if (hit != nullptr && SameSeries(hit->series, p.request.series)) {
        {
          std::lock_guard<std::mutex> lock(mu_);
          ++stats_.cache_hits;
        }
        Fulfill(&p, hit->result);
        continue;
      }
    }
    if (p.dedupable) {
      auto [it, inserted] = dupes.try_emplace(p.key);
      if (inserted ||
          SameSeries(it->second.front()->request.series, p.request.series)) {
        it->second.push_back(&p);
        if (!inserted) {
          std::lock_guard<std::mutex> lock(mu_);
          ++stats_.deduped;
          continue;  // a follower; the leader computes
        }
      }
      // else: a hash-collision twin with different contents — computes on
      // its own below, outside the waiter list.
    }
    misses.push_back(&p);
  }

  // 2. Resolve model ids once (the registry of models can only grow).
  std::unordered_map<std::string, models::Model*> models;
  {
    std::lock_guard<std::mutex> lock(mu_);
    models = models_;
  }

  // 3. Coalesce "dcam" misses per model into shared engine passes; serve
  // every other method through its per-(method, model) registry explainer.
  // Leaders with followers also record their result locally — the LRU alone
  // is not a safe hand-off, since a small cache may evict a leader's entry
  // before its followers are reached.
  std::unordered_map<CacheKey, ExplanationResult, CacheKeyHash> computed;
  const CompleteFn complete = [&](Pending* p, const ExplanationResult& r) {
    // The series is cloned into the entry: the client may legitimately
    // reuse its buffer once the request completes, and the stored bytes
    // back the SameSeries collision guard.
    if (p->cacheable) {
      cache_.Put(p->key, CacheEntry{r, p->request.series.Clone()});
    }
    auto it = dupes.find(p->key);
    // Only the waiter list's own leader feeds the followers — a
    // hash-collision twin shares the key but not the series.
    if (it != dupes.end() && it->second.size() > 1 &&
        it->second.front() == p) {
      computed.emplace(p->key, r);
    }
    Fulfill(p, r);
  };
  std::vector<std::pair<models::Model*, std::vector<Pending*>>> dcam_groups;
  std::vector<Pending*> singles;
  for (Pending* p : misses) {
    models::Model* model = models.at(p->request.model_id);
    if (p->request.method == "dcam") {
      auto it = std::find_if(dcam_groups.begin(), dcam_groups.end(),
                             [&](const auto& g) { return g.first == model; });
      if (it == dcam_groups.end()) {
        dcam_groups.push_back({model, {p}});
      } else {
        it->second.push_back(p);
      }
    } else {
      singles.push_back(p);
    }
  }
  for (auto& [model, group] : dcam_groups) {
    ProcessDcamGroup(model, &group, complete);
  }
  for (Pending* p : singles) {
    models::Model* model = models.at(p->request.model_id);
    const ExplanationResult result =
        ExplainerFor(p->request.method, model)
            ->Explain(model, p->request.series, p->request.class_idx,
                      p->request.options);
    complete(p, result);
  }

  // 4. Fulfill the deduped followers from their leaders' results.
  for (auto& [key, waiters] : dupes) {
    if (waiters.size() <= 1) continue;
    auto it = computed.find(key);
    DCAM_CHECK(it != computed.end());
    for (size_t i = 1; i < waiters.size(); ++i) Fulfill(waiters[i], it->second);
  }
}

}  // namespace explain
}  // namespace dcam
