#include "explain/completion_queue.h"

#include <utility>

#include "util/check.h"

namespace dcam {
namespace explain {

CompletionQueue::~CompletionQueue() {
  std::lock_guard<std::mutex> lock(mu_);
  // A pending op means the service still holds this queue's pointer and
  // will Push into freed memory — always a client lifetime bug.
  DCAM_CHECK_EQ(pending_, 0u)
      << "CompletionQueue destroyed with ops still in flight; drain with "
         "Next() until it returns false (after Shutdown) first";
}

void CompletionQueue::BeginOp() {
  std::lock_guard<std::mutex> lock(mu_);
  DCAM_CHECK(!shutdown_) << "async submit against a shut-down CompletionQueue";
  ++pending_;
}

void CompletionQueue::Push(Completion c) {
  std::unique_lock<std::mutex> lock(mu_);
  DCAM_CHECK_GT(pending_, 0u) << "Push without a matching BeginOp";
  if (capacity_ > 0) {
    // Backpressure: a producer (scheduler shard) waits for the consumer.
    // Shutdown releases the wait so a full buffer can never wedge it.
    producer_cv_.wait(
        lock, [&] { return shutdown_ || buffer_.size() < capacity_; });
  }
  if (shutdown_) {
    // The op was pending across Shutdown: deliver the tag so the client
    // can reclaim its per-op state, but drop the payload — a shut-down
    // queue must not hand out results its consumer already stopped
    // expecting.
    c.status = Status::kShutdown;
    c.result = ExplanationResult{};
    c.error = nullptr;
  }
  --pending_;
  buffer_.push_back(std::move(c));
  // Notify under the lock: delivering the last pending op entitles the
  // consumer to drain and destroy the queue, so the condition variable must
  // not be touched after mu_ is released.
  consumer_cv_.notify_one();
}

void CompletionQueue::PushTick(Completion c) {
  std::unique_lock<std::mutex> lock(mu_);
  DCAM_CHECK_GT(pending_, 0u) << "PushTick without a matching BeginOp";
  if (capacity_ > 0) {
    producer_cv_.wait(
        lock, [&] { return shutdown_ || buffer_.size() < capacity_; });
  }
  // A tick after Shutdown is dropped outright: the pending slot stays with
  // the terminal Push (which delivers kShutdown), and a consumer that
  // stopped listening must not wade through stale partial maps to find it.
  if (shutdown_) return;
  c.status = Status::kTick;
  buffer_.push_back(std::move(c));
  consumer_cv_.notify_one();  // under the lock, as in Push
}

bool CompletionQueue::Next(Completion* out) {
  std::unique_lock<std::mutex> lock(mu_);
  consumer_cv_.wait(lock, [&] {
    return !buffer_.empty() || (shutdown_ && pending_ == 0);
  });
  if (buffer_.empty()) return false;  // shut down and fully drained
  *out = std::move(buffer_.front());
  buffer_.pop_front();
  producer_cv_.notify_one();  // still under the lock (see Push)
  return true;
}

bool CompletionQueue::TryNext(Completion* out) {
  std::lock_guard<std::mutex> lock(mu_);
  if (buffer_.empty()) return false;
  *out = std::move(buffer_.front());
  buffer_.pop_front();
  producer_cv_.notify_one();  // still under the lock (see Push)
  return true;
}

void CompletionQueue::Shutdown() {
  std::lock_guard<std::mutex> lock(mu_);
  shutdown_ = true;
  // Under the lock: an already-drained consumer may destroy the queue the
  // moment shutdown becomes observable.
  consumer_cv_.notify_all();
  producer_cv_.notify_all();
}

uint64_t CompletionQueue::pending() const {
  std::lock_guard<std::mutex> lock(mu_);
  return pending_;
}

}  // namespace explain
}  // namespace dcam
