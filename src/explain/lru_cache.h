// A small least-recently-used map, the in-memory tier of the result cache
// behind explain::ExplainService.
//
// Explanation requests in a serving setting repeat heavily — the same
// (model, method, series, options) tuple arrives from many clients — and
// every built-in Explainer is deterministic given its options, so a repeated
// request can be answered from memory instead of re-running k forward
// passes. Header-only and dependency-free; NOT internally synchronized (the
// service guards it with a dedicated mutex shared by its scheduler shards).
//
// Eviction is byte-weighted: each entry carries the byte cost the caller
// declares at Put (a cached explanation owns its map *and* the series stored
// for collision verification, so entries differ by orders of magnitude), and
// the cache evicts least-recent entries while either bound — entry count or
// total bytes — is exceeded. Entries may also carry an absolute expiry
// timestamp; expiry is lazy, charged to the probe that touches the stale
// entry (there is no sweeper thread), which is exactly when staleness
// matters.

#ifndef DCAM_EXPLAIN_LRU_CACHE_H_
#define DCAM_EXPLAIN_LRU_CACHE_H_

#include <cstddef>
#include <cstdint>
#include <list>
#include <unordered_map>
#include <utility>

#include "util/check.h"

namespace dcam {
namespace explain {

/// Bounded key -> value map with least-recently-used eviction.
/// Get promotes; Put inserts (or overwrites) as most-recent and evicts
/// least-recent entries while over either bound. `capacity` bounds the entry
/// count (0 disables the cache: Put drops the value and Get always misses);
/// `capacity_bytes` bounds the sum of per-entry byte weights (0 = no byte
/// bound, every entry weighs whatever the caller said).
template <typename K, typename V, typename Hash = std::hash<K>>
class LruCache {
 public:
  explicit LruCache(size_t capacity, size_t capacity_bytes = 0)
      : capacity_(capacity), capacity_bytes_(capacity_bytes) {}

  /// Pointer to the cached value (valid until the next non-const call), or
  /// nullptr on miss. A hit becomes the most-recently-used entry. `now_ns`
  /// is the probe time on whatever clock the caller stamped expiries with:
  /// an entry whose expiry has passed is erased here (counted in expired(),
  /// not evictions()) and reported as a miss. now_ns = 0 skips the expiry
  /// check — callers that never set expiries need no clock.
  const V* Get(const K& key, uint64_t now_ns = 0) {
    auto it = index_.find(key);
    if (it == index_.end()) return nullptr;
    if (now_ns != 0 && it->second->expires_ns != 0 &&
        now_ns >= it->second->expires_ns) {
      bytes_ -= it->second->bytes;
      order_.erase(it->second);
      index_.erase(it);
      ++expired_;
      return nullptr;
    }
    order_.splice(order_.begin(), order_, it->second);
    return &it->second->value;
  }

  /// Inserts or overwrites `key` as the most-recently-used entry. `bytes` is
  /// the entry's eviction weight (defaults to 1: pure entry-count LRU);
  /// `expires_ns` an absolute lazy-expiry timestamp (0 = never expires). An
  /// entry that alone exceeds capacity_bytes is not cached — admitting it
  /// would evict the whole working set for a value too large to keep.
  void Put(const K& key, V value, size_t bytes = 1, uint64_t expires_ns = 0) {
    if (capacity_ == 0) return;
    auto it = index_.find(key);
    if (capacity_bytes_ != 0 && bytes > capacity_bytes_) {
      if (it != index_.end()) {
        bytes_ -= it->second->bytes;
        order_.erase(it->second);
        index_.erase(it);
      }
      return;
    }
    if (it != index_.end()) {
      bytes_ -= it->second->bytes;
      it->second->value = std::move(value);
      it->second->bytes = bytes;
      it->second->expires_ns = expires_ns;
      bytes_ += bytes;
      order_.splice(order_.begin(), order_, it->second);
    } else {
      order_.push_front(Entry{key, std::move(value), bytes, expires_ns});
      index_.emplace(key, order_.begin());
      bytes_ += bytes;
    }
    while (index_.size() > capacity_ ||
           (capacity_bytes_ != 0 && bytes_ > capacity_bytes_)) {
      bytes_ -= order_.back().bytes;
      index_.erase(order_.back().key);
      order_.pop_back();
      ++evictions_;
    }
  }

  /// True when `key` is cached (expired-but-unprobed entries included).
  /// Does not affect recency.
  bool Contains(const K& key) const { return index_.count(key) > 0; }

  /// Drops every entry whose key satisfies `pred` (recency of survivors is
  /// unchanged; the drops do not count as evictions). Returns the number of
  /// entries removed. Backbone of ExplainService::InvalidateModel.
  template <typename Pred>
  size_t EraseIf(Pred pred) {
    size_t erased = 0;
    for (auto it = order_.begin(); it != order_.end();) {
      if (pred(it->key)) {
        bytes_ -= it->bytes;
        index_.erase(it->key);
        it = order_.erase(it);
        ++erased;
      } else {
        ++it;
      }
    }
    return erased;
  }

  size_t size() const { return index_.size(); }
  size_t capacity() const { return capacity_; }
  /// Sum of the byte weights of the cached entries.
  size_t bytes() const { return bytes_; }
  size_t capacity_bytes() const { return capacity_bytes_; }

  /// Number of entries dropped by capacity (count or byte) eviction since
  /// construction.
  uint64_t evictions() const { return evictions_; }

  /// Number of entries dropped because a probe found them past their expiry.
  uint64_t expired() const { return expired_; }

  void Clear() {
    order_.clear();
    index_.clear();
    bytes_ = 0;
  }

 private:
  struct Entry {
    K key;
    V value;
    size_t bytes = 1;
    uint64_t expires_ns = 0;  // absolute, caller's clock; 0 = never
  };
  size_t capacity_;
  size_t capacity_bytes_;
  size_t bytes_ = 0;
  uint64_t evictions_ = 0;
  uint64_t expired_ = 0;
  std::list<Entry> order_;  // front = most recent
  std::unordered_map<K, typename std::list<Entry>::iterator, Hash> index_;
};

}  // namespace explain
}  // namespace dcam

#endif  // DCAM_EXPLAIN_LRU_CACHE_H_
