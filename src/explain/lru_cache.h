// A small least-recently-used map, the result cache behind
// explain::ExplainService.
//
// Explanation requests in a serving setting repeat heavily — the same
// (model, method, series, options) tuple arrives from many clients — and
// every built-in Explainer is deterministic given its options, so a repeated
// request can be answered from memory instead of re-running k forward
// passes. Header-only and dependency-free; NOT internally synchronized (the
// service guards it with a dedicated mutex shared by its scheduler shards).

#ifndef DCAM_EXPLAIN_LRU_CACHE_H_
#define DCAM_EXPLAIN_LRU_CACHE_H_

#include <cstddef>
#include <cstdint>
#include <list>
#include <unordered_map>
#include <utility>

#include "util/check.h"

namespace dcam {
namespace explain {

/// Fixed-capacity key -> value map with least-recently-used eviction.
/// Get promotes; Put inserts (or overwrites) as most-recent and evicts the
/// least-recent entry beyond capacity. A capacity of 0 disables the cache:
/// Put drops the value and Get always misses.
template <typename K, typename V, typename Hash = std::hash<K>>
class LruCache {
 public:
  explicit LruCache(size_t capacity) : capacity_(capacity) {}

  /// Pointer to the cached value (valid until the next non-const call), or
  /// nullptr on miss. A hit becomes the most-recently-used entry.
  const V* Get(const K& key) {
    auto it = index_.find(key);
    if (it == index_.end()) return nullptr;
    order_.splice(order_.begin(), order_, it->second);
    return &it->second->second;
  }

  /// Inserts or overwrites `key` as the most-recently-used entry.
  void Put(const K& key, V value) {
    if (capacity_ == 0) return;
    auto it = index_.find(key);
    if (it != index_.end()) {
      it->second->second = std::move(value);
      order_.splice(order_.begin(), order_, it->second);
      return;
    }
    order_.emplace_front(key, std::move(value));
    index_.emplace(key, order_.begin());
    if (index_.size() > capacity_) {
      index_.erase(order_.back().first);
      order_.pop_back();
      ++evictions_;
    }
  }

  /// True when `key` is cached. Does not affect recency.
  bool Contains(const K& key) const { return index_.count(key) > 0; }

  /// Drops every entry whose key satisfies `pred` (recency of survivors is
  /// unchanged; the drops do not count as evictions). Returns the number of
  /// entries removed. Backbone of ExplainService::InvalidateModel.
  template <typename Pred>
  size_t EraseIf(Pred pred) {
    size_t erased = 0;
    for (auto it = order_.begin(); it != order_.end();) {
      if (pred(it->first)) {
        index_.erase(it->first);
        it = order_.erase(it);
        ++erased;
      } else {
        ++it;
      }
    }
    return erased;
  }

  size_t size() const { return index_.size(); }
  size_t capacity() const { return capacity_; }

  /// Number of entries dropped by capacity eviction since construction.
  uint64_t evictions() const { return evictions_; }

  void Clear() {
    order_.clear();
    index_.clear();
  }

 private:
  using Entry = std::pair<K, V>;
  size_t capacity_;
  uint64_t evictions_ = 0;
  std::list<Entry> order_;  // front = most recent
  std::unordered_map<K, typename std::list<Entry>::iterator, Hash> index_;
};

}  // namespace explain
}  // namespace dcam

#endif  // DCAM_EXPLAIN_LRU_CACHE_H_
