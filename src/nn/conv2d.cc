#include "nn/conv2d.h"

#include "tensor/gemm.h"
#include "tensor/gemm_bf16.h"
#include "util/parallel.h"
#include "util/rng.h"

namespace dcam {
namespace nn {

Conv2d::Conv2d(int in_channels, int out_channels, int kernel_h, int kernel_w,
               int pad_h, int pad_w, Rng* rng, bool use_bias)
    : in_channels_(in_channels),
      out_channels_(out_channels),
      kernel_h_(kernel_h),
      kernel_w_(kernel_w),
      pad_h_(pad_h),
      pad_w_(pad_w),
      use_bias_(use_bias),
      weight_("conv2d.w", {out_channels, in_channels, kernel_h, kernel_w}),
      bias_("conv2d.b", {out_channels}) {
  DCAM_CHECK_GT(in_channels, 0);
  DCAM_CHECK_GT(out_channels, 0);
  DCAM_CHECK_GT(kernel_h, 0);
  DCAM_CHECK_GT(kernel_w, 0);
  HeUniformInit(&weight_.value,
                static_cast<int64_t>(in_channels) * kernel_h * kernel_w, rng);
}

Tensor Conv2d::Forward(const Tensor& input, bool training) {
  DCAM_CHECK_EQ(input.rank(), 4);
  DCAM_CHECK_EQ(input.dim(1), in_channels_);
  const int64_t B = input.dim(0), H = input.dim(2), W = input.dim(3);
  const int64_t Hout = H + 2 * pad_h_ - kernel_h_ + 1;
  const int64_t Wout = W + 2 * pad_w_ - kernel_w_ + 1;
  DCAM_CHECK_GT(Hout, 0);
  DCAM_CHECK_GT(Wout, 0);
  cached_input_ = input;

  const int64_t Cin = in_channels_, Cout = out_channels_;
  const int64_t KH = kernel_h_, KW = kernel_w_, PH = pad_h_, PW = pad_w_;
  const int64_t CKK = Cin * KH * KW;
  const int64_t HW = Hout * Wout;

  if (!training && gemm::CurrentGemmPrecision() == gemm::Precision::kBf16) {
    // Inference-only bf16 path: the lowered input is written and re-read as
    // 16-bit columns (half the im2col traffic), and the widening GEMM rounds
    // the weights at pack time. Gradients never see this path — and the
    // float32 scratch is invalidated so a Backward after a bf16 forward
    // aborts on its shape check instead of consuming stale columns.
    col_ = Tensor();
    col16_.resize(static_cast<size_t>(B * CKK * HW));
    Tensor out({B, Cout, Hout, Wout});
    const float* in = input.data();
    uint16_t* col16 = col16_.data();
    ParallelFor(0, B, [&](int64_t b) {
      gemm::Im2Col2dBf16(in + b * Cin * H * W, Cin, H, W, KH, KW, PH, PW,
                         col16 + b * CKK * HW);
    });
    const float* w = weight_.value.data();
    const float* bias = bias_.value.data();
    float* o = out.data();
    for (int64_t b = 0; b < B; ++b) {
      float* ob = o + b * Cout * HW;
      float beta = 0.0f;
      if (use_bias_) {
        for (int64_t co = 0; co < Cout; ++co) {
          float* oplane = ob + co * HW;
          for (int64_t i = 0; i < HW; ++i) oplane[i] = bias[co];
        }
        beta = 1.0f;
      }
      gemm::SgemmBf16PackedB(Cout, HW, CKK, 1.0f, w, CKK,
                             col16 + b * CKK * HW, HW, beta, ob, HW);
    }
    return out;
  }

  EnsureTensorShape(&col_, {B, CKK, HW});
  Tensor out({B, Cout, Hout, Wout});
  const float* in = input.data();
  float* col = col_.data();
  ParallelFor(0, B, [&](int64_t b) {
    gemm::Im2Col2d(in + b * Cin * H * W, Cin, H, W, KH, KW, PH, PW,
                   col + b * CKK * HW);
  });

  // Per instance: out_b (Cout, HW) = W (Cout, Cin*KH*KW) * col_b (CKK, HW),
  // accumulating onto the bias-initialized output. The GEMM threads
  // internally, so the batch loop stays serial.
  const float* w = weight_.value.data();
  const float* bias = bias_.value.data();
  float* o = out.data();
  for (int64_t b = 0; b < B; ++b) {
    float* ob = o + b * Cout * HW;
    float beta = 0.0f;
    if (use_bias_) {
      for (int64_t co = 0; co < Cout; ++co) {
        float* oplane = ob + co * HW;
        for (int64_t i = 0; i < HW; ++i) oplane[i] = bias[co];
      }
      beta = 1.0f;
    }
    gemm::SgemmNN(Cout, HW, CKK, 1.0f, w, col + b * CKK * HW, beta, ob);
  }
  return out;
}

Tensor Conv2d::Backward(const Tensor& grad_output) {
  DCAM_CHECK(!cached_input_.empty()) << "Backward before Forward";
  const Tensor& input = cached_input_;
  const int64_t B = input.dim(0), H = input.dim(2), W = input.dim(3);
  const int64_t Hout = grad_output.dim(2), Wout = grad_output.dim(3);
  DCAM_CHECK_EQ(grad_output.dim(0), B);
  DCAM_CHECK_EQ(grad_output.dim(1), out_channels_);
  const int64_t Cin = in_channels_, Cout = out_channels_;
  const int64_t KH = kernel_h_, KW = kernel_w_, PH = pad_h_, PW = pad_w_;
  const int64_t CKK = Cin * KH * KW;
  const int64_t HW = Hout * Wout;
  DCAM_CHECK(col_.shape() == Shape({B, CKK, HW}))
      << "Backward im2col scratch does not match Forward";
  const float* w = weight_.value.data();
  const float* go = grad_output.data();
  const float* col = col_.data();

  // Input gradient: dcol_b = W^T (CKK, Cout) * go_b (Cout, HW), then col2im
  // scatters the columns back into the (zero-initialized) grad_in.
  // Parallel over the batch (disjoint dcol_/grad_in slices per instance);
  // the per-instance GEMMs degrade to serial inside the parallel region.
  Tensor grad_in(input.shape());
  EnsureTensorShape(&dcol_, {B, CKK, HW});
  float* gi = grad_in.data();
  float* dcol = dcol_.data();
  ParallelFor(0, B, [&](int64_t b) {
    float* dcol_b = dcol + b * CKK * HW;
    gemm::SgemmTN(CKK, HW, Cout, 1.0f, w, go + b * Cout * HW, 0.0f, dcol_b);
    gemm::Col2Im2d(dcol_b, Cin, H, W, KH, KW, PH, PW,
                   gi + b * Cin * H * W);
  });

  // Weight gradient: dW (Cout, CKK) += go_b (Cout, HW) * col_b^T, beta = 1
  // accumulating straight into the parameter gradient.
  float* gw = weight_.grad.data();
  for (int64_t b = 0; b < B; ++b) {
    gemm::SgemmNT(Cout, CKK, HW, 1.0f, go + b * Cout * HW, col + b * CKK * HW,
                  1.0f, gw);
  }

  if (use_bias_) {
    float* gb = bias_.grad.data();
    ParallelFor(0, Cout, [&](int64_t co) {
      double acc = 0.0;
      for (int64_t b = 0; b < B; ++b) {
        const float* gplane = go + (b * Cout + co) * HW;
        for (int64_t i = 0; i < HW; ++i) acc += gplane[i];
      }
      gb[co] += static_cast<float>(acc);
    });
  }
  return grad_in;
}

Tensor Conv2d::ForwardNaive(const Tensor& input) {
  DCAM_CHECK_EQ(input.rank(), 4);
  DCAM_CHECK_EQ(input.dim(1), in_channels_);
  const int64_t B = input.dim(0), H = input.dim(2), W = input.dim(3);
  const int64_t Hout = H + 2 * pad_h_ - kernel_h_ + 1;
  const int64_t Wout = W + 2 * pad_w_ - kernel_w_ + 1;
  DCAM_CHECK_GT(Hout, 0);
  DCAM_CHECK_GT(Wout, 0);
  cached_input_ = input;
  // Invalidate the im2col scratch so a (mismatched) GEMM Backward after a
  // naive forward fails its shape check instead of reusing stale columns.
  col_ = Tensor();

  Tensor out({B, out_channels_, Hout, Wout});
  const float* w = weight_.value.data();
  const float* bias = bias_.value.data();
  const float* in = input.data();
  float* o = out.data();
  const int64_t Cin = in_channels_, Cout = out_channels_;
  const int64_t KH = kernel_h_, KW = kernel_w_, PH = pad_h_, PW = pad_w_;

  ParallelFor(0, B * Cout, [&](int64_t idx) {
    const int64_t b = idx / Cout;
    const int64_t co = idx % Cout;
    const float* inb = in + b * Cin * H * W;
    float* oplane = o + (b * Cout + co) * Hout * Wout;
    if (use_bias_) {
      for (int64_t i = 0; i < Hout * Wout; ++i) oplane[i] = bias[co];
    }
    for (int64_t ci = 0; ci < Cin; ++ci) {
      const float* iplane = inb + ci * H * W;
      const float* wk = w + ((co * Cin + ci) * KH) * KW;
      for (int64_t kh = 0; kh < KH; ++kh) {
        const int64_t ylo = std::max<int64_t>(0, PH - kh);
        const int64_t yhi = std::min<int64_t>(Hout, H + PH - kh);
        for (int64_t kw = 0; kw < KW; ++kw) {
          const float wv = wk[kh * KW + kw];
          const int64_t xlo = std::max<int64_t>(0, PW - kw);
          const int64_t xhi = std::min<int64_t>(Wout, W + PW - kw);
          for (int64_t y = ylo; y < yhi; ++y) {
            const float* irow = iplane + (y + kh - PH) * W + xlo + kw - PW;
            float* orow = oplane + y * Wout + xlo;
            for (int64_t x = xlo; x < xhi; ++x) *orow++ += wv * *irow++;
          }
        }
      }
    }
  });
  return out;
}

Tensor Conv2d::BackwardNaive(const Tensor& grad_output) {
  DCAM_CHECK(!cached_input_.empty()) << "Backward before Forward";
  const Tensor& input = cached_input_;
  const int64_t B = input.dim(0), H = input.dim(2), W = input.dim(3);
  const int64_t Hout = grad_output.dim(2), Wout = grad_output.dim(3);
  DCAM_CHECK_EQ(grad_output.dim(0), B);
  DCAM_CHECK_EQ(grad_output.dim(1), out_channels_);
  const int64_t Cin = in_channels_, Cout = out_channels_;
  const int64_t KH = kernel_h_, KW = kernel_w_, PH = pad_h_, PW = pad_w_;
  const float* w = weight_.value.data();
  const float* in = input.data();
  const float* go = grad_output.data();

  Tensor grad_in(input.shape());
  float* gi = grad_in.data();
  ParallelFor(0, B, [&](int64_t b) {
    const float* gob = go + b * Cout * Hout * Wout;
    float* gib = gi + b * Cin * H * W;
    for (int64_t co = 0; co < Cout; ++co) {
      const float* gplane = gob + co * Hout * Wout;
      for (int64_t ci = 0; ci < Cin; ++ci) {
        float* iplane = gib + ci * H * W;
        const float* wk = w + ((co * Cin + ci) * KH) * KW;
        for (int64_t kh = 0; kh < KH; ++kh) {
          const int64_t ylo = std::max<int64_t>(0, PH - kh);
          const int64_t yhi = std::min<int64_t>(Hout, H + PH - kh);
          for (int64_t kw = 0; kw < KW; ++kw) {
            const float wv = wk[kh * KW + kw];
            const int64_t xlo = std::max<int64_t>(0, PW - kw);
            const int64_t xhi = std::min<int64_t>(Wout, W + PW - kw);
            for (int64_t y = ylo; y < yhi; ++y) {
              const float* gr = gplane + y * Wout + xlo;
              float* ir = iplane + (y + kh - PH) * W + xlo + kw - PW;
              for (int64_t x = xlo; x < xhi; ++x) *ir++ += wv * *gr++;
            }
          }
        }
      }
    }
  });

  float* gw = weight_.grad.data();
  float* gb = bias_.grad.data();
  ParallelFor(0, Cout, [&](int64_t co) {
    double bias_acc = 0.0;
    for (int64_t b = 0; b < B; ++b) {
      const float* gplane = go + (b * Cout + co) * Hout * Wout;
      const float* inb = in + b * Cin * H * W;
      for (int64_t i = 0; i < Hout * Wout; ++i) bias_acc += gplane[i];
      for (int64_t ci = 0; ci < Cin; ++ci) {
        const float* iplane = inb + ci * H * W;
        float* gwk = gw + ((co * Cin + ci) * KH) * KW;
        for (int64_t kh = 0; kh < KH; ++kh) {
          const int64_t ylo = std::max<int64_t>(0, PH - kh);
          const int64_t yhi = std::min<int64_t>(Hout, H + PH - kh);
          for (int64_t kw = 0; kw < KW; ++kw) {
            const int64_t xlo = std::max<int64_t>(0, PW - kw);
            const int64_t xhi = std::min<int64_t>(Wout, W + PW - kw);
            double acc = 0.0;
            for (int64_t y = ylo; y < yhi; ++y) {
              const float* gr = gplane + y * Wout + xlo;
              const float* ir = iplane + (y + kh - PH) * W + xlo + kw - PW;
              for (int64_t x = xlo; x < xhi; ++x) acc += *gr++ * *ir++;
            }
            gwk[kh * KW + kw] += static_cast<float>(acc);
          }
        }
      }
    }
    if (use_bias_) gb[co] += static_cast<float>(bias_acc);
  });
  return grad_in;
}

std::vector<Parameter*> Conv2d::Params() {
  if (use_bias_) return {&weight_, &bias_};
  return {&weight_};
}

}  // namespace nn
}  // namespace dcam
