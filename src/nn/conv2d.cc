#include "nn/conv2d.h"

#include "util/parallel.h"
#include "util/rng.h"

namespace dcam {
namespace nn {

Conv2d::Conv2d(int in_channels, int out_channels, int kernel_h, int kernel_w,
               int pad_h, int pad_w, Rng* rng, bool use_bias)
    : in_channels_(in_channels),
      out_channels_(out_channels),
      kernel_h_(kernel_h),
      kernel_w_(kernel_w),
      pad_h_(pad_h),
      pad_w_(pad_w),
      use_bias_(use_bias),
      weight_("conv2d.w", {out_channels, in_channels, kernel_h, kernel_w}),
      bias_("conv2d.b", {out_channels}) {
  DCAM_CHECK_GT(in_channels, 0);
  DCAM_CHECK_GT(out_channels, 0);
  DCAM_CHECK_GT(kernel_h, 0);
  DCAM_CHECK_GT(kernel_w, 0);
  HeUniformInit(&weight_.value,
                static_cast<int64_t>(in_channels) * kernel_h * kernel_w, rng);
}

Tensor Conv2d::Forward(const Tensor& input, bool /*training*/) {
  DCAM_CHECK_EQ(input.rank(), 4);
  DCAM_CHECK_EQ(input.dim(1), in_channels_);
  const int64_t B = input.dim(0), H = input.dim(2), W = input.dim(3);
  const int64_t Hout = H + 2 * pad_h_ - kernel_h_ + 1;
  const int64_t Wout = W + 2 * pad_w_ - kernel_w_ + 1;
  DCAM_CHECK_GT(Hout, 0);
  DCAM_CHECK_GT(Wout, 0);
  cached_input_ = input;

  Tensor out({B, out_channels_, Hout, Wout});
  const float* w = weight_.value.data();
  const float* bias = bias_.value.data();
  const float* in = input.data();
  float* o = out.data();
  const int64_t Cin = in_channels_, Cout = out_channels_;
  const int64_t KH = kernel_h_, KW = kernel_w_, PH = pad_h_, PW = pad_w_;

  ParallelFor(0, B * Cout, [&](int64_t idx) {
    const int64_t b = idx / Cout;
    const int64_t co = idx % Cout;
    const float* inb = in + b * Cin * H * W;
    float* oplane = o + (b * Cout + co) * Hout * Wout;
    if (use_bias_) {
      for (int64_t i = 0; i < Hout * Wout; ++i) oplane[i] = bias[co];
    }
    for (int64_t ci = 0; ci < Cin; ++ci) {
      const float* iplane = inb + ci * H * W;
      const float* wk = w + ((co * Cin + ci) * KH) * KW;
      for (int64_t kh = 0; kh < KH; ++kh) {
        const int64_t ylo = std::max<int64_t>(0, PH - kh);
        const int64_t yhi = std::min<int64_t>(Hout, H + PH - kh);
        for (int64_t kw = 0; kw < KW; ++kw) {
          const float wv = wk[kh * KW + kw];
          if (wv == 0.0f) continue;
          const int64_t xlo = std::max<int64_t>(0, PW - kw);
          const int64_t xhi = std::min<int64_t>(Wout, W + PW - kw);
          for (int64_t y = ylo; y < yhi; ++y) {
            const float* irow = iplane + (y + kh - PH) * W + xlo + kw - PW;
            float* orow = oplane + y * Wout + xlo;
            for (int64_t x = xlo; x < xhi; ++x) *orow++ += wv * *irow++;
          }
        }
      }
    }
  });
  return out;
}

Tensor Conv2d::Backward(const Tensor& grad_output) {
  DCAM_CHECK(!cached_input_.empty()) << "Backward before Forward";
  const Tensor& input = cached_input_;
  const int64_t B = input.dim(0), H = input.dim(2), W = input.dim(3);
  const int64_t Hout = grad_output.dim(2), Wout = grad_output.dim(3);
  DCAM_CHECK_EQ(grad_output.dim(0), B);
  DCAM_CHECK_EQ(grad_output.dim(1), out_channels_);
  const int64_t Cin = in_channels_, Cout = out_channels_;
  const int64_t KH = kernel_h_, KW = kernel_w_, PH = pad_h_, PW = pad_w_;
  const float* w = weight_.value.data();
  const float* in = input.data();
  const float* go = grad_output.data();

  Tensor grad_in(input.shape());
  float* gi = grad_in.data();
  ParallelFor(0, B, [&](int64_t b) {
    const float* gob = go + b * Cout * Hout * Wout;
    float* gib = gi + b * Cin * H * W;
    for (int64_t co = 0; co < Cout; ++co) {
      const float* gplane = gob + co * Hout * Wout;
      for (int64_t ci = 0; ci < Cin; ++ci) {
        float* iplane = gib + ci * H * W;
        const float* wk = w + ((co * Cin + ci) * KH) * KW;
        for (int64_t kh = 0; kh < KH; ++kh) {
          const int64_t ylo = std::max<int64_t>(0, PH - kh);
          const int64_t yhi = std::min<int64_t>(Hout, H + PH - kh);
          for (int64_t kw = 0; kw < KW; ++kw) {
            const float wv = wk[kh * KW + kw];
            if (wv == 0.0f) continue;
            const int64_t xlo = std::max<int64_t>(0, PW - kw);
            const int64_t xhi = std::min<int64_t>(Wout, W + PW - kw);
            for (int64_t y = ylo; y < yhi; ++y) {
              const float* gr = gplane + y * Wout + xlo;
              float* ir = iplane + (y + kh - PH) * W + xlo + kw - PW;
              for (int64_t x = xlo; x < xhi; ++x) *ir++ += wv * *gr++;
            }
          }
        }
      }
    }
  });

  float* gw = weight_.grad.data();
  float* gb = bias_.grad.data();
  ParallelFor(0, Cout, [&](int64_t co) {
    double bias_acc = 0.0;
    for (int64_t b = 0; b < B; ++b) {
      const float* gplane = go + (b * Cout + co) * Hout * Wout;
      const float* inb = in + b * Cin * H * W;
      for (int64_t i = 0; i < Hout * Wout; ++i) bias_acc += gplane[i];
      for (int64_t ci = 0; ci < Cin; ++ci) {
        const float* iplane = inb + ci * H * W;
        float* gwk = gw + ((co * Cin + ci) * KH) * KW;
        for (int64_t kh = 0; kh < KH; ++kh) {
          const int64_t ylo = std::max<int64_t>(0, PH - kh);
          const int64_t yhi = std::min<int64_t>(Hout, H + PH - kh);
          for (int64_t kw = 0; kw < KW; ++kw) {
            const int64_t xlo = std::max<int64_t>(0, PW - kw);
            const int64_t xhi = std::min<int64_t>(Wout, W + PW - kw);
            double acc = 0.0;
            for (int64_t y = ylo; y < yhi; ++y) {
              const float* gr = gplane + y * Wout + xlo;
              const float* ir = iplane + (y + kh - PH) * W + xlo + kw - PW;
              for (int64_t x = xlo; x < xhi; ++x) acc += *gr++ * *ir++;
            }
            gwk[kh * KW + kw] += static_cast<float>(acc);
          }
        }
      }
    }
    if (use_bias_) gb[co] += static_cast<float>(bias_acc);
  });
  return grad_in;
}

std::vector<Parameter*> Conv2d::Params() {
  if (use_bias_) return {&weight_, &bias_};
  return {&weight_};
}

}  // namespace nn
}  // namespace dcam
