// 2-D convolution over (batch, channels, height, width) tensors.
//
// This is the workhorse of the paper's proposal: the dCNN/dResNet/
// dInceptionTime architectures feed the C(T) cube as a (B, D, D, n) tensor
// (channels = dimensions of one row-permutation, height = the D cyclic rows,
// width = time) through Conv2d layers with (1, l) kernels, realizing the
// paper's kernels of size (D, l, 1). The cCNN baselines use (B, 1, D, n)
// inputs, and MTEX-CNN uses (l, 1) kernels.

#ifndef DCAM_NN_CONV2D_H_
#define DCAM_NN_CONV2D_H_

#include <cstdint>
#include <string>
#include <vector>

#include "nn/layer.h"

namespace dcam {
namespace nn {

/// Conv2d with stride 1 and symmetric zero padding per axis.
/// Input (B, Cin, H, W) -> (B, Cout, H + 2*ph - kh + 1, W + 2*pw - kw + 1).
///
/// Forward/Backward lower the convolution to im2col + SGEMM (tensor/gemm.h)
/// with persistent per-layer scratch; the direct per-element loops survive
/// as ForwardNaive/BackwardNaive, the reference the equivalence tests and
/// naive-vs-kernel benchmarks compare against.
class Conv2d : public Layer {
 public:
  Conv2d(int in_channels, int out_channels, int kernel_h, int kernel_w,
         int pad_h, int pad_w, Rng* rng, bool use_bias = true);

  Tensor Forward(const Tensor& input, bool training) override;
  Tensor Backward(const Tensor& grad_output) override;

  /// Direct-convolution reference path, numerically equivalent to
  /// Forward/Backward up to float summation order. ForwardNaive sets the
  /// input cache BackwardNaive consumes but invalidates the im2col scratch,
  /// so pairing it with the GEMM Backward aborts instead of silently using
  /// stale columns (BackwardNaive after Forward is fine).
  Tensor ForwardNaive(const Tensor& input);
  Tensor BackwardNaive(const Tensor& grad_output);

  std::vector<Parameter*> Params() override;
  std::string name() const override { return "Conv2d"; }

  Parameter& weight() { return weight_; }
  Parameter& bias() { return bias_; }
  int out_channels() const { return out_channels_; }

 private:
  int in_channels_;
  int out_channels_;
  int kernel_h_;
  int kernel_w_;
  int pad_h_;
  int pad_w_;
  bool use_bias_;
  Parameter weight_;  // (Cout, Cin, KH, KW)
  Parameter bias_;    // (Cout)
  Tensor cached_input_;
  // Persistent im2col scratch: col_ holds the lowered input for the whole
  // batch, (B, Cin*KH*KW, Hout*Wout), built in Forward and reused by the
  // weight gradient; dcol_, same shape, is what the input gradient scatters
  // from (per-instance slices, parallel over the batch).
  Tensor col_;
  Tensor dcol_;
  // bf16 lowering scratch for the inference-only reduced-precision forward
  // (gemm::Precision::kBf16): same (B, Cin*KH*KW, Hout*Wout) layout as col_
  // at half the width. Forward invalidates col_ when it takes this path so
  // Backward cannot consume stale float32 columns.
  std::vector<uint16_t> col16_;
};

}  // namespace nn
}  // namespace dcam

#endif  // DCAM_NN_CONV2D_H_
