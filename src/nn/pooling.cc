#include "nn/pooling.h"

#include <limits>

namespace dcam {
namespace nn {

Tensor GlobalAvgPool::Forward(const Tensor& input, bool /*training*/) {
  DCAM_CHECK(input.rank() == 3 || input.rank() == 4);
  cached_shape_ = input.shape();
  const int64_t B = input.dim(0), C = input.dim(1);
  int64_t S = input.dim(2);
  if (input.rank() == 4) S *= input.dim(3);
  Tensor out({B, C});
  const float* in = input.data();
  for (int64_t b = 0; b < B; ++b) {
    for (int64_t c = 0; c < C; ++c) {
      const float* p = in + (b * C + c) * S;
      double acc = 0.0;
      for (int64_t s = 0; s < S; ++s) acc += p[s];
      out.at(b, c) = static_cast<float>(acc / S);
    }
  }
  return out;
}

Tensor GlobalAvgPool::Backward(const Tensor& grad_output) {
  DCAM_CHECK(!cached_shape_.empty()) << "Backward before Forward";
  const int64_t B = cached_shape_[0], C = cached_shape_[1];
  int64_t S = cached_shape_[2];
  if (cached_shape_.size() == 4) S *= cached_shape_[3];
  DCAM_CHECK_EQ(grad_output.dim(0), B);
  DCAM_CHECK_EQ(grad_output.dim(1), C);
  Tensor grad_in(cached_shape_);
  float* gi = grad_in.data();
  const float inv = 1.0f / static_cast<float>(S);
  for (int64_t b = 0; b < B; ++b) {
    for (int64_t c = 0; c < C; ++c) {
      const float g = grad_output.at(b, c) * inv;
      float* p = gi + (b * C + c) * S;
      for (int64_t s = 0; s < S; ++s) p[s] = g;
    }
  }
  return grad_in;
}

MaxPool1d::MaxPool1d(int kernel, int stride, int padding)
    : kernel_(kernel), stride_(stride), padding_(padding) {
  DCAM_CHECK_GT(kernel, 0);
  DCAM_CHECK_GT(stride, 0);
  DCAM_CHECK_GE(padding, 0);
}

Tensor MaxPool1d::Forward(const Tensor& input, bool /*training*/) {
  DCAM_CHECK_EQ(input.rank(), 3);
  cached_in_shape_ = input.shape();
  const int64_t B = input.dim(0), C = input.dim(1), L = input.dim(2);
  const int64_t Lout = (L + 2 * padding_ - kernel_) / stride_ + 1;
  DCAM_CHECK_GT(Lout, 0);
  Tensor out({B, C, Lout});
  argmax_.assign(B * C * Lout, -1);
  const float* in = input.data();
  float* o = out.data();
  for (int64_t bc = 0; bc < B * C; ++bc) {
    const float* row = in + bc * L;
    float* orow = o + bc * Lout;
    int64_t* arow = argmax_.data() + bc * Lout;
    for (int64_t i = 0; i < Lout; ++i) {
      const int64_t start = i * stride_ - padding_;
      float best = -std::numeric_limits<float>::infinity();
      int64_t best_idx = -1;
      for (int64_t k = 0; k < kernel_; ++k) {
        const int64_t j = start + k;
        if (j < 0 || j >= L) continue;
        if (row[j] > best) {
          best = row[j];
          best_idx = j;
        }
      }
      DCAM_CHECK_GE(best_idx, 0) << "pooling window fully out of bounds";
      orow[i] = best;
      arow[i] = bc * L + best_idx;
    }
  }
  return out;
}

Tensor MaxPool1d::Backward(const Tensor& grad_output) {
  DCAM_CHECK(!cached_in_shape_.empty()) << "Backward before Forward";
  Tensor grad_in(cached_in_shape_);
  float* gi = grad_in.data();
  const float* g = grad_output.data();
  DCAM_CHECK_EQ(grad_output.size(), static_cast<int64_t>(argmax_.size()));
  for (size_t i = 0; i < argmax_.size(); ++i) {
    gi[argmax_[i]] += g[i];
  }
  return grad_in;
}

MaxPool2d::MaxPool2d(int kernel_h, int kernel_w, int stride_h, int stride_w,
                     int pad_h, int pad_w)
    : kernel_h_(kernel_h),
      kernel_w_(kernel_w),
      stride_h_(stride_h),
      stride_w_(stride_w),
      pad_h_(pad_h),
      pad_w_(pad_w) {
  DCAM_CHECK_GT(kernel_h, 0);
  DCAM_CHECK_GT(kernel_w, 0);
  DCAM_CHECK_GT(stride_h, 0);
  DCAM_CHECK_GT(stride_w, 0);
}

Tensor MaxPool2d::Forward(const Tensor& input, bool /*training*/) {
  DCAM_CHECK_EQ(input.rank(), 4);
  cached_in_shape_ = input.shape();
  const int64_t B = input.dim(0), C = input.dim(1), H = input.dim(2),
                W = input.dim(3);
  const int64_t Hout = (H + 2 * pad_h_ - kernel_h_) / stride_h_ + 1;
  const int64_t Wout = (W + 2 * pad_w_ - kernel_w_) / stride_w_ + 1;
  DCAM_CHECK_GT(Hout, 0);
  DCAM_CHECK_GT(Wout, 0);
  Tensor out({B, C, Hout, Wout});
  argmax_.assign(B * C * Hout * Wout, -1);
  const float* in = input.data();
  float* o = out.data();
  for (int64_t bc = 0; bc < B * C; ++bc) {
    const float* plane = in + bc * H * W;
    float* oplane = o + bc * Hout * Wout;
    int64_t* aplane = argmax_.data() + bc * Hout * Wout;
    for (int64_t y = 0; y < Hout; ++y) {
      for (int64_t x = 0; x < Wout; ++x) {
        const int64_t ys = y * stride_h_ - pad_h_;
        const int64_t xs = x * stride_w_ - pad_w_;
        float best = -std::numeric_limits<float>::infinity();
        int64_t best_idx = -1;
        for (int64_t kh = 0; kh < kernel_h_; ++kh) {
          const int64_t yy = ys + kh;
          if (yy < 0 || yy >= H) continue;
          for (int64_t kw = 0; kw < kernel_w_; ++kw) {
            const int64_t xx = xs + kw;
            if (xx < 0 || xx >= W) continue;
            const float v = plane[yy * W + xx];
            if (v > best) {
              best = v;
              best_idx = yy * W + xx;
            }
          }
        }
        DCAM_CHECK_GE(best_idx, 0) << "pooling window fully out of bounds";
        oplane[y * Wout + x] = best;
        aplane[y * Wout + x] = bc * H * W + best_idx;
      }
    }
  }
  return out;
}

Tensor MaxPool2d::Backward(const Tensor& grad_output) {
  DCAM_CHECK(!cached_in_shape_.empty()) << "Backward before Forward";
  Tensor grad_in(cached_in_shape_);
  float* gi = grad_in.data();
  const float* g = grad_output.data();
  DCAM_CHECK_EQ(grad_output.size(), static_cast<int64_t>(argmax_.size()));
  for (size_t i = 0; i < argmax_.size(); ++i) {
    gi[argmax_[i]] += g[i];
  }
  return grad_in;
}

Tensor Flatten::Forward(const Tensor& input, bool /*training*/) {
  DCAM_CHECK_GE(input.rank(), 2);
  cached_shape_ = input.shape();
  return input.Reshape({input.dim(0), input.size() / input.dim(0)});
}

Tensor Flatten::Backward(const Tensor& grad_output) {
  DCAM_CHECK(!cached_shape_.empty()) << "Backward before Forward";
  return grad_output.Reshape(cached_shape_);
}

}  // namespace nn
}  // namespace dcam
