#include "nn/recurrent.h"

#include <cmath>

#include "tensor/ops.h"
#include "util/rng.h"

namespace dcam {
namespace nn {
namespace {

inline float SigmoidF(float x) { return 1.0f / (1.0f + std::exp(-x)); }

// Extracts timestep t of a (B, D, n) tensor as (B, D).
Tensor TimeSlice(const Tensor& input, int64_t t) {
  const int64_t B = input.dim(0), D = input.dim(1), n = input.dim(2);
  Tensor x({B, D});
  for (int64_t b = 0; b < B; ++b) {
    for (int64_t d = 0; d < D; ++d) x.at(b, d) = input.at(b, d, t);
  }
  (void)n;
  return x;
}

}  // namespace

std::string CellTypeName(CellType type) {
  switch (type) {
    case CellType::kRnn:
      return "RNN";
    case CellType::kLstm:
      return "LSTM";
    case CellType::kGru:
      return "GRU";
  }
  return "?";
}

Recurrent::Recurrent(CellType type, int input_size, int hidden_size, Rng* rng)
    : type_(type),
      input_(input_size),
      hidden_(hidden_size),
      wx_("rec.wx", {NumGates() * hidden_size, input_size}),
      wh_("rec.wh", {NumGates() * hidden_size, hidden_size}),
      bias_x_("rec.bx", {NumGates() * hidden_size}),
      bias_h_("rec.bh", {NumGates() * hidden_size}) {
  GlorotUniformInit(&wx_.value, input_size, hidden_size, rng);
  GlorotUniformInit(&wh_.value, hidden_size, hidden_size, rng);
}

int Recurrent::NumGates() const {
  switch (type_) {
    case CellType::kRnn:
      return 1;
    case CellType::kLstm:
      return 4;  // i, f, g, o
    case CellType::kGru:
      return 3;  // r, z, n
  }
  return 1;
}

Tensor Recurrent::Forward(const Tensor& input, bool /*training*/) {
  DCAM_CHECK_EQ(input.rank(), 3);
  DCAM_CHECK_EQ(input.dim(1), input_);
  const int64_t B = input.dim(0), n = input.dim(2);
  const int64_t H = hidden_;
  const int G = NumGates();
  cached_input_ = input;
  h_.assign(1, Tensor({B, H}));
  c_.assign(1, Tensor({B, H}));
  gates_.clear();
  candidate_.clear();

  for (int64_t t = 0; t < n; ++t) {
    Tensor xt = TimeSlice(input, t);
    // Pre-activations: (B, G*H) = x Wx^T + bx  and  h_{t-1} Wh^T + bh.
    Tensor ax = ops::MatMulBT(xt, wx_.value);
    Tensor ah = ops::MatMulBT(h_.back(), wh_.value);
    for (int64_t b = 0; b < B; ++b) {
      for (int64_t j = 0; j < G * H; ++j) {
        ax.at(b, j) += bias_x_.value[j];
        ah.at(b, j) += bias_h_.value[j];
      }
    }
    Tensor gate({B, static_cast<int64_t>(G) * H});
    Tensor hnew({B, H});
    const Tensor& hprev = h_.back();

    switch (type_) {
      case CellType::kRnn: {
        for (int64_t b = 0; b < B; ++b) {
          for (int64_t j = 0; j < H; ++j) {
            const float v = std::tanh(ax.at(b, j) + ah.at(b, j));
            gate.at(b, j) = v;
            hnew.at(b, j) = v;
          }
        }
        break;
      }
      case CellType::kLstm: {
        Tensor cnew({B, H});
        const Tensor& cprev = c_.back();
        for (int64_t b = 0; b < B; ++b) {
          for (int64_t j = 0; j < H; ++j) {
            const float i = SigmoidF(ax.at(b, j) + ah.at(b, j));
            const float f = SigmoidF(ax.at(b, H + j) + ah.at(b, H + j));
            const float g = std::tanh(ax.at(b, 2 * H + j) + ah.at(b, 2 * H + j));
            const float o = SigmoidF(ax.at(b, 3 * H + j) + ah.at(b, 3 * H + j));
            const float cv = f * cprev.at(b, j) + i * g;
            gate.at(b, j) = i;
            gate.at(b, H + j) = f;
            gate.at(b, 2 * H + j) = g;
            gate.at(b, 3 * H + j) = o;
            cnew.at(b, j) = cv;
            hnew.at(b, j) = o * std::tanh(cv);
          }
        }
        c_.push_back(cnew);
        break;
      }
      case CellType::kGru: {
        Tensor hn({B, H});  // Un h_{t-1} + bn_h — needed by backward
        for (int64_t b = 0; b < B; ++b) {
          for (int64_t j = 0; j < H; ++j) {
            const float r = SigmoidF(ax.at(b, j) + ah.at(b, j));
            const float z = SigmoidF(ax.at(b, H + j) + ah.at(b, H + j));
            const float hn_v = ah.at(b, 2 * H + j);
            const float nv = std::tanh(ax.at(b, 2 * H + j) + r * hn_v);
            gate.at(b, j) = r;
            gate.at(b, H + j) = z;
            gate.at(b, 2 * H + j) = nv;
            hn.at(b, j) = hn_v;
            hnew.at(b, j) = (1.0f - z) * nv + z * hprev.at(b, j);
          }
        }
        candidate_.push_back(hn);
        break;
      }
    }
    gates_.push_back(gate);
    h_.push_back(hnew);
  }
  return h_.back();
}

Tensor Recurrent::Backward(const Tensor& grad_output) {
  DCAM_CHECK(!cached_input_.empty()) << "Backward before Forward";
  const Tensor& input = cached_input_;
  const int64_t B = input.dim(0), n = input.dim(2);
  const int64_t H = hidden_;
  const int G = NumGates();
  DCAM_CHECK_EQ(grad_output.dim(0), B);
  DCAM_CHECK_EQ(grad_output.dim(1), H);

  Tensor grad_in(input.shape());
  Tensor dh = grad_output.Clone();
  Tensor dc({B, H});

  for (int64_t t = n - 1; t >= 0; --t) {
    const Tensor& gate = gates_[t];
    const Tensor& hprev = h_[t];
    Tensor da({B, static_cast<int64_t>(G) * H});  // grad at Wx-side pre-acts
    Tensor dah;  // grad at Wh-side pre-acts; same as da except for GRU's n
    Tensor dh_prev({B, H});

    switch (type_) {
      case CellType::kRnn: {
        for (int64_t b = 0; b < B; ++b) {
          for (int64_t j = 0; j < H; ++j) {
            const float y = gate.at(b, j);
            da.at(b, j) = dh.at(b, j) * (1.0f - y * y);
          }
        }
        dah = da;
        break;
      }
      case CellType::kLstm: {
        const Tensor& cprev = c_[t];
        const Tensor& cnew = c_[t + 1];
        Tensor dc_next({B, H});
        for (int64_t b = 0; b < B; ++b) {
          for (int64_t j = 0; j < H; ++j) {
            const float i = gate.at(b, j);
            const float f = gate.at(b, H + j);
            const float g = gate.at(b, 2 * H + j);
            const float o = gate.at(b, 3 * H + j);
            const float tc = std::tanh(cnew.at(b, j));
            float dct = dc.at(b, j) + dh.at(b, j) * o * (1.0f - tc * tc);
            const float do_ = dh.at(b, j) * tc;
            const float di = dct * g;
            const float df = dct * cprev.at(b, j);
            const float dg = dct * i;
            dc_next.at(b, j) = dct * f;
            da.at(b, j) = di * i * (1.0f - i);
            da.at(b, H + j) = df * f * (1.0f - f);
            da.at(b, 2 * H + j) = dg * (1.0f - g * g);
            da.at(b, 3 * H + j) = do_ * o * (1.0f - o);
          }
        }
        dc = dc_next;
        dah = da;
        break;
      }
      case CellType::kGru: {
        dah = Tensor({B, static_cast<int64_t>(G) * H});
        const Tensor& hn = candidate_[t];
        for (int64_t b = 0; b < B; ++b) {
          for (int64_t j = 0; j < H; ++j) {
            const float r = gate.at(b, j);
            const float z = gate.at(b, H + j);
            const float nv = gate.at(b, 2 * H + j);
            const float dhv = dh.at(b, j);
            const float dn = dhv * (1.0f - z);
            const float dz = dhv * (hprev.at(b, j) - nv);
            dh_prev.at(b, j) += dhv * z;
            const float dan = dn * (1.0f - nv * nv);
            const float dr = dan * hn.at(b, j);
            da.at(b, j) = dr * r * (1.0f - r);
            da.at(b, H + j) = dz * z * (1.0f - z);
            da.at(b, 2 * H + j) = dan;
            dah.at(b, j) = da.at(b, j);
            dah.at(b, H + j) = da.at(b, H + j);
            dah.at(b, 2 * H + j) = dan * r;  // reset gate modulates Wh path
          }
        }
        break;
      }
    }

    // Parameter gradients.
    Tensor xt = TimeSlice(input, t);
    ops::AddInPlace(&wx_.grad, ops::MatMulAT(da, xt));
    ops::AddInPlace(&wh_.grad, ops::MatMulAT(dah, hprev));
    for (int64_t b = 0; b < B; ++b) {
      for (int64_t j = 0; j < G * H; ++j) {
        bias_x_.grad[j] += da.at(b, j);
        bias_h_.grad[j] += dah.at(b, j);
      }
    }

    // Gradient w.r.t. x_t and h_{t-1}.
    Tensor dx = ops::MatMul(da, wx_.value);        // (B, D)
    Tensor dhp = ops::MatMul(dah, wh_.value);      // (B, H)
    ops::AddInPlace(&dh_prev, dhp);
    for (int64_t b = 0; b < B; ++b) {
      for (int64_t d = 0; d < input_; ++d) grad_in.at(b, d, t) = dx.at(b, d);
    }
    dh = dh_prev;
  }
  return grad_in;
}

std::vector<Parameter*> Recurrent::Params() {
  return {&wx_, &wh_, &bias_x_, &bias_h_};
}

}  // namespace nn
}  // namespace dcam
