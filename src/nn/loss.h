// Softmax cross-entropy loss (the loss used throughout the paper, Section 2).

#ifndef DCAM_NN_LOSS_H_
#define DCAM_NN_LOSS_H_

#include <vector>

#include "tensor/tensor.h"

namespace dcam {
namespace nn {

/// Combined softmax + negative log-likelihood over a batch.
class SoftmaxCrossEntropy {
 public:
  /// logits: (B, num_classes); labels: B class indices.
  /// Returns the mean loss over the batch.
  double Forward(const Tensor& logits, const std::vector<int>& labels);

  /// Gradient of the mean loss w.r.t. the logits, shape (B, num_classes).
  Tensor Backward() const;

  /// Softmax probabilities from the last Forward, shape (B, num_classes).
  const Tensor& probabilities() const { return probs_; }

 private:
  Tensor probs_;
  std::vector<int> labels_;
};

}  // namespace nn
}  // namespace dcam

#endif  // DCAM_NN_LOSS_H_
