// Fully connected layer (B, in) -> (B, out).
//
// The dense layer after the Global Average Pooling is what CAM/dCAM read
// their class weights w_m^{C_j} from (Section 2.2).

#ifndef DCAM_NN_DENSE_H_
#define DCAM_NN_DENSE_H_

#include <string>
#include <vector>

#include "nn/layer.h"

namespace dcam {
namespace nn {

class Dense : public Layer {
 public:
  Dense(int in_features, int out_features, Rng* rng, bool use_bias = true);

  Tensor Forward(const Tensor& input, bool training) override;
  Tensor Backward(const Tensor& grad_output) override;
  std::vector<Parameter*> Params() override;
  std::string name() const override { return "Dense"; }

  /// Weight matrix, shape (out_features, in_features). CAM reads row j as
  /// the per-kernel weights of class j.
  Parameter& weight() { return weight_; }
  const Parameter& weight() const { return weight_; }
  Parameter& bias() { return bias_; }
  const Parameter& bias() const { return bias_; }

  int in_features() const { return in_features_; }
  int out_features() const { return out_features_; }

 private:
  int in_features_;
  int out_features_;
  bool use_bias_;
  Parameter weight_;  // (out, in)
  Parameter bias_;    // (out)
  Tensor cached_input_;
};

}  // namespace nn
}  // namespace dcam

#endif  // DCAM_NN_DENSE_H_
