// Recurrent sequence layers: vanilla RNN, LSTM, and GRU with full
// backpropagation-through-time.
//
// The paper's experimental study includes RNN/LSTM/GRU baselines configured
// as a single recurrent hidden layer of 128 units whose final hidden state
// feeds a dense classifier (Section 5.2). Input is (B, D, n) — the time axis
// is last — and the layer outputs the final hidden state (B, H).

#ifndef DCAM_NN_RECURRENT_H_
#define DCAM_NN_RECURRENT_H_

#include <string>
#include <vector>

#include "nn/layer.h"

namespace dcam {
namespace nn {

enum class CellType { kRnn, kLstm, kGru };

/// Returns "RNN" / "LSTM" / "GRU".
std::string CellTypeName(CellType type);

class Recurrent : public Layer {
 public:
  Recurrent(CellType type, int input_size, int hidden_size, Rng* rng);

  /// input (B, D, n) -> final hidden state (B, H).
  Tensor Forward(const Tensor& input, bool training) override;
  Tensor Backward(const Tensor& grad_output) override;
  std::vector<Parameter*> Params() override;
  std::string name() const override { return CellTypeName(type_); }

  int hidden_size() const { return hidden_; }

 private:
  // Number of stacked gate blocks in the weight matrices.
  int NumGates() const;

  CellType type_;
  int input_;
  int hidden_;
  Parameter wx_;      // (G*H, D)
  Parameter wh_;      // (G*H, H)
  Parameter bias_x_;  // (G*H)
  Parameter bias_h_;  // (G*H) — used by GRU's reset-gated candidate; kept at
                      // zero (and still trained) for RNN/LSTM for uniformity.

  // Forward caches (per timestep).
  Tensor cached_input_;            // (B, D, n)
  std::vector<Tensor> h_;          // h_0..h_n, each (B, H); h_0 is zeros
  std::vector<Tensor> c_;          // LSTM cell states c_0..c_n
  std::vector<Tensor> gates_;      // activated gates per step (B, G*H)
  std::vector<Tensor> candidate_;  // GRU: Un h + bn_h pre-reset term (B, H)
};

}  // namespace nn
}  // namespace dcam

#endif  // DCAM_NN_RECURRENT_H_
