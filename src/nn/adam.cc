#include "nn/adam.h"

#include <cmath>

namespace dcam {
namespace nn {

Adam::Adam(std::vector<Parameter*> params, float lr, float beta1, float beta2,
           float eps)
    : params_(std::move(params)), lr_(lr), beta1_(beta1), beta2_(beta2),
      eps_(eps) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (Parameter* p : params_) {
    DCAM_CHECK(p != nullptr);
    m_.emplace_back(p->value.shape());
    v_.emplace_back(p->value.shape());
  }
}

void Adam::ZeroGrad() {
  for (Parameter* p : params_) p->ZeroGrad();
}

void Adam::Step() {
  ++t_;
  const double bc1 = 1.0 - std::pow(beta1_, static_cast<double>(t_));
  const double bc2 = 1.0 - std::pow(beta2_, static_cast<double>(t_));
  const float alpha = static_cast<float>(lr_ * std::sqrt(bc2) / bc1);
  for (size_t i = 0; i < params_.size(); ++i) {
    Parameter* p = params_[i];
    float* w = p->value.data();
    const float* g = p->grad.data();
    float* m = m_[i].data();
    float* v = v_[i].data();
    const int64_t n = p->value.size();
    for (int64_t j = 0; j < n; ++j) {
      m[j] = beta1_ * m[j] + (1.0f - beta1_) * g[j];
      v[j] = beta2_ * v[j] + (1.0f - beta2_) * g[j] * g[j];
      w[j] -= alpha * m[j] / (std::sqrt(v[j]) + eps_);
    }
  }
}

}  // namespace nn
}  // namespace dcam
