// Batch normalization over the channel axis of rank-3 (B, C, L) or rank-4
// (B, C, H, W) tensors.
//
// All convolutional blocks in the paper's architectures interleave BatchNorm
// with ReLU (Section 2.1). Training mode uses batch statistics and updates
// exponential running averages; evaluation mode (the mode in which CAM and
// dCAM are computed) uses the running statistics.

#ifndef DCAM_NN_BATCHNORM_H_
#define DCAM_NN_BATCHNORM_H_

#include <string>
#include <vector>

#include "nn/layer.h"

namespace dcam {
namespace nn {

class BatchNorm : public Layer {
 public:
  explicit BatchNorm(int num_features, float momentum = 0.1f,
                     float eps = 1e-5f);

  Tensor Forward(const Tensor& input, bool training) override;
  Tensor Backward(const Tensor& grad_output) override;
  std::vector<Parameter*> Params() override;
  std::vector<std::pair<std::string, Tensor*>> Buffers() override {
    return {{"running_mean", &running_mean_}, {"running_var", &running_var_}};
  }
  std::string name() const override { return "BatchNorm"; }

  Parameter& gamma() { return gamma_; }
  Parameter& beta() { return beta_; }
  const Tensor& running_mean() const { return running_mean_; }
  const Tensor& running_var() const { return running_var_; }

 private:
  int num_features_;
  float momentum_;
  float eps_;
  Parameter gamma_;  // (C) scale
  Parameter beta_;   // (C) shift
  Tensor running_mean_;
  Tensor running_var_;

  // Caches from the last Forward.
  bool cached_training_ = false;
  Tensor cached_xhat_;    // normalized input, same shape as input
  Tensor cached_invstd_;  // (C)
};

}  // namespace nn
}  // namespace dcam

#endif  // DCAM_NN_BATCHNORM_H_
