// Elementwise activation layers.

#ifndef DCAM_NN_ACTIVATION_H_
#define DCAM_NN_ACTIVATION_H_

#include <string>

#include "nn/layer.h"

namespace dcam {
namespace nn {

/// Rectified linear unit, y = max(x, 0).
class ReLU : public Layer {
 public:
  Tensor Forward(const Tensor& input, bool training) override;
  Tensor Backward(const Tensor& grad_output) override;
  std::string name() const override { return "ReLU"; }

 private:
  Tensor cached_input_;
};

/// Hyperbolic tangent.
class Tanh : public Layer {
 public:
  Tensor Forward(const Tensor& input, bool training) override;
  Tensor Backward(const Tensor& grad_output) override;
  std::string name() const override { return "Tanh"; }

 private:
  Tensor cached_output_;
};

/// Logistic sigmoid.
class Sigmoid : public Layer {
 public:
  Tensor Forward(const Tensor& input, bool training) override;
  Tensor Backward(const Tensor& grad_output) override;
  std::string name() const override { return "Sigmoid"; }

 private:
  Tensor cached_output_;
};

/// Leaky rectified linear unit, y = x for x > 0, y = slope * x otherwise
/// (Xu et al., 2015 — one of the alternatives the paper's Section 2 names).
class LeakyReLU : public Layer {
 public:
  explicit LeakyReLU(float slope = 0.01f);

  Tensor Forward(const Tensor& input, bool training) override;
  Tensor Backward(const Tensor& grad_output) override;
  std::string name() const override { return "LeakyReLU"; }

  float slope() const { return slope_; }

 private:
  float slope_;
  Tensor cached_input_;
};

}  // namespace nn
}  // namespace dcam

#endif  // DCAM_NN_ACTIVATION_H_
