#include "nn/activation.h"

#include <cmath>

namespace dcam {
namespace nn {

Tensor ReLU::Forward(const Tensor& input, bool /*training*/) {
  cached_input_ = input;
  Tensor out(input.shape());
  const float* in = input.data();
  float* o = out.data();
  for (int64_t i = 0; i < input.size(); ++i) {
    o[i] = in[i] > 0.0f ? in[i] : 0.0f;
  }
  return out;
}

Tensor ReLU::Backward(const Tensor& grad_output) {
  DCAM_CHECK(!cached_input_.empty()) << "Backward before Forward";
  DCAM_CHECK(grad_output.shape() == cached_input_.shape());
  Tensor grad_in(grad_output.shape());
  const float* g = grad_output.data();
  const float* in = cached_input_.data();
  float* q = grad_in.data();
  for (int64_t i = 0; i < grad_output.size(); ++i) {
    q[i] = in[i] > 0.0f ? g[i] : 0.0f;
  }
  return grad_in;
}

Tensor Tanh::Forward(const Tensor& input, bool /*training*/) {
  Tensor out(input.shape());
  const float* in = input.data();
  float* o = out.data();
  for (int64_t i = 0; i < input.size(); ++i) o[i] = std::tanh(in[i]);
  cached_output_ = out;
  return out;
}

Tensor Tanh::Backward(const Tensor& grad_output) {
  DCAM_CHECK(!cached_output_.empty()) << "Backward before Forward";
  Tensor grad_in(grad_output.shape());
  const float* g = grad_output.data();
  const float* y = cached_output_.data();
  float* q = grad_in.data();
  for (int64_t i = 0; i < grad_output.size(); ++i) {
    q[i] = g[i] * (1.0f - y[i] * y[i]);
  }
  return grad_in;
}

Tensor Sigmoid::Forward(const Tensor& input, bool /*training*/) {
  Tensor out(input.shape());
  const float* in = input.data();
  float* o = out.data();
  for (int64_t i = 0; i < input.size(); ++i) {
    o[i] = 1.0f / (1.0f + std::exp(-in[i]));
  }
  cached_output_ = out;
  return out;
}

Tensor Sigmoid::Backward(const Tensor& grad_output) {
  DCAM_CHECK(!cached_output_.empty()) << "Backward before Forward";
  Tensor grad_in(grad_output.shape());
  const float* g = grad_output.data();
  const float* y = cached_output_.data();
  float* q = grad_in.data();
  for (int64_t i = 0; i < grad_output.size(); ++i) {
    q[i] = g[i] * y[i] * (1.0f - y[i]);
  }
  return grad_in;
}

LeakyReLU::LeakyReLU(float slope) : slope_(slope) {
  DCAM_CHECK_GE(slope, 0.0f);
  DCAM_CHECK_LT(slope, 1.0f);
}

Tensor LeakyReLU::Forward(const Tensor& input, bool /*training*/) {
  cached_input_ = input;
  Tensor out(input.shape());
  const float* in = input.data();
  float* o = out.data();
  for (int64_t i = 0; i < input.size(); ++i) {
    o[i] = in[i] > 0.0f ? in[i] : slope_ * in[i];
  }
  return out;
}

Tensor LeakyReLU::Backward(const Tensor& grad_output) {
  DCAM_CHECK(!cached_input_.empty()) << "Backward before Forward";
  DCAM_CHECK(grad_output.shape() == cached_input_.shape());
  Tensor grad_in(grad_output.shape());
  const float* g = grad_output.data();
  const float* in = cached_input_.data();
  float* q = grad_in.data();
  for (int64_t i = 0; i < grad_output.size(); ++i) {
    q[i] = in[i] > 0.0f ? g[i] : slope_ * g[i];
  }
  return grad_in;
}

}  // namespace nn
}  // namespace dcam
