// Sequential container of layers with per-layer activation and gradient
// capture (needed by CAM, which reads the last conv activation, and by
// grad-CAM, which reads the gradient flowing into an interior layer).

#ifndef DCAM_NN_SEQUENTIAL_H_
#define DCAM_NN_SEQUENTIAL_H_

#include <memory>
#include <string>
#include <vector>

#include "nn/layer.h"

namespace dcam {
namespace nn {

class Sequential : public Layer {
 public:
  Sequential() = default;

  /// Appends a layer; returns a raw observer pointer for later inspection.
  template <typename L, typename... Args>
  L* Emplace(Args&&... args) {
    auto layer = std::make_unique<L>(std::forward<Args>(args)...);
    L* ptr = layer.get();
    layers_.push_back(std::move(layer));
    return ptr;
  }

  /// Appends an already-constructed layer.
  Layer* Add(std::unique_ptr<Layer> layer);

  Tensor Forward(const Tensor& input, bool training) override;
  Tensor Backward(const Tensor& grad_output) override;
  std::vector<Parameter*> Params() override;
  std::vector<std::pair<std::string, Tensor*>> Buffers() override;
  std::string name() const override { return "Sequential"; }

  int num_layers() const { return static_cast<int>(layers_.size()); }
  Layer* layer(int i) { return layers_[i].get(); }

  /// Output of layer i from the most recent Forward().
  const Tensor& layer_output(int i) const;

  /// Gradient w.r.t. the *output* of layer i from the most recent Backward()
  /// (i.e., the gradient that entered layer i+1, or the top gradient for the
  /// last layer).
  const Tensor& layer_output_grad(int i) const;

 private:
  std::vector<std::unique_ptr<Layer>> layers_;
  std::vector<Tensor> outputs_;
  std::vector<Tensor> output_grads_;
};

}  // namespace nn
}  // namespace dcam

#endif  // DCAM_NN_SEQUENTIAL_H_
