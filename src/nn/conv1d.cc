#include "nn/conv1d.h"

#include "tensor/gemm.h"
#include "tensor/gemm_bf16.h"
#include "util/parallel.h"
#include "util/rng.h"

namespace dcam {
namespace nn {

Conv1d::Conv1d(int in_channels, int out_channels, int kernel, int padding,
               Rng* rng, bool use_bias)
    : in_channels_(in_channels),
      out_channels_(out_channels),
      kernel_(kernel),
      padding_(padding),
      use_bias_(use_bias),
      weight_("conv1d.w", {out_channels, in_channels, kernel}),
      bias_("conv1d.b", {out_channels}) {
  DCAM_CHECK_GT(in_channels, 0);
  DCAM_CHECK_GT(out_channels, 0);
  DCAM_CHECK_GT(kernel, 0);
  DCAM_CHECK_GE(padding, 0);
  HeUniformInit(&weight_.value, static_cast<int64_t>(in_channels) * kernel,
                rng);
}

Tensor Conv1d::Forward(const Tensor& input, bool training) {
  DCAM_CHECK_EQ(input.rank(), 3);
  DCAM_CHECK_EQ(input.dim(1), in_channels_);
  const int64_t B = input.dim(0), L = input.dim(2);
  const int64_t Lout = L + 2 * padding_ - kernel_ + 1;
  DCAM_CHECK_GT(Lout, 0) << "series too short for kernel";
  cached_input_ = input;

  const int64_t Cin = in_channels_, Cout = out_channels_, K = kernel_,
                P = padding_;
  const int64_t CK = Cin * K;

  if (!training && gemm::CurrentGemmPrecision() == gemm::Precision::kBf16) {
    // Inference-only bf16 path (see Conv2d::Forward): 16-bit columns, the
    // widening GEMM, and invalidated float32 scratch so Backward aborts.
    col_ = Tensor();
    col16_.resize(static_cast<size_t>(B * CK * Lout));
    Tensor out({B, Cout, Lout});
    const float* in = input.data();
    uint16_t* col16 = col16_.data();
    ParallelFor(0, B, [&](int64_t b) {
      gemm::Im2Col1dBf16(in + b * Cin * L, Cin, L, K, P,
                         col16 + b * CK * Lout);
    });
    const float* w = weight_.value.data();
    const float* bias = bias_.value.data();
    float* o = out.data();
    for (int64_t b = 0; b < B; ++b) {
      float* ob = o + b * Cout * Lout;
      float beta = 0.0f;
      if (use_bias_) {
        for (int64_t co = 0; co < Cout; ++co) {
          float* orow = ob + co * Lout;
          for (int64_t i = 0; i < Lout; ++i) orow[i] = bias[co];
        }
        beta = 1.0f;
      }
      gemm::SgemmBf16PackedB(Cout, Lout, CK, 1.0f, w, CK,
                             col16 + b * CK * Lout, Lout, beta, ob, Lout);
    }
    return out;
  }

  EnsureTensorShape(&col_, {B, CK, Lout});
  Tensor out({B, Cout, Lout});
  const float* in = input.data();
  float* col = col_.data();
  ParallelFor(0, B, [&](int64_t b) {
    gemm::Im2Col1d(in + b * Cin * L, Cin, L, K, P, col + b * CK * Lout);
  });

  // Per instance: out_b (Cout, Lout) = W (Cout, Cin*K) * col_b (Cin*K, Lout),
  // accumulating onto the bias-initialized output. The GEMM threads
  // internally, so the batch loop stays serial.
  const float* w = weight_.value.data();
  const float* bias = bias_.value.data();
  float* o = out.data();
  for (int64_t b = 0; b < B; ++b) {
    float* ob = o + b * Cout * Lout;
    float beta = 0.0f;
    if (use_bias_) {
      for (int64_t co = 0; co < Cout; ++co) {
        float* orow = ob + co * Lout;
        for (int64_t i = 0; i < Lout; ++i) orow[i] = bias[co];
      }
      beta = 1.0f;
    }
    gemm::SgemmNN(Cout, Lout, CK, 1.0f, w, col + b * CK * Lout, beta, ob);
  }
  return out;
}

Tensor Conv1d::Backward(const Tensor& grad_output) {
  DCAM_CHECK(!cached_input_.empty()) << "Backward before Forward";
  const Tensor& input = cached_input_;
  const int64_t B = input.dim(0), L = input.dim(2);
  const int64_t Lout = grad_output.dim(2);
  DCAM_CHECK_EQ(grad_output.dim(0), B);
  DCAM_CHECK_EQ(grad_output.dim(1), out_channels_);
  const int64_t Cin = in_channels_, Cout = out_channels_, K = kernel_,
                P = padding_;
  const int64_t CK = Cin * K;
  DCAM_CHECK(col_.shape() == Shape({B, CK, Lout}))
      << "Backward im2col scratch does not match Forward";
  const float* w = weight_.value.data();
  const float* go = grad_output.data();
  const float* col = col_.data();

  // Input gradient: dcol_b = W^T (Cin*K, Cout) * go_b (Cout, Lout), then
  // col2im scatters the columns back into the (zero-initialized) grad_in.
  // Parallel over the batch (disjoint dcol_/grad_in slices per instance);
  // the per-instance GEMMs degrade to serial inside the parallel region.
  Tensor grad_in(input.shape());
  EnsureTensorShape(&dcol_, {B, CK, Lout});
  float* gi = grad_in.data();
  float* dcol = dcol_.data();
  ParallelFor(0, B, [&](int64_t b) {
    float* dcol_b = dcol + b * CK * Lout;
    gemm::SgemmTN(CK, Lout, Cout, 1.0f, w, go + b * Cout * Lout, 0.0f,
                  dcol_b);
    gemm::Col2Im1d(dcol_b, Cin, L, K, P, gi + b * Cin * L);
  });

  // Weight gradient: dW (Cout, Cin*K) += go_b (Cout, Lout) * col_b^T,
  // beta = 1 accumulating straight into the parameter gradient.
  float* gw = weight_.grad.data();
  for (int64_t b = 0; b < B; ++b) {
    gemm::SgemmNT(Cout, CK, Lout, 1.0f, go + b * Cout * Lout,
                  col + b * CK * Lout, 1.0f, gw);
  }

  if (use_bias_) {
    float* gb = bias_.grad.data();
    ParallelFor(0, Cout, [&](int64_t co) {
      double acc = 0.0;
      for (int64_t b = 0; b < B; ++b) {
        const float* gorow = go + (b * Cout + co) * Lout;
        for (int64_t i = 0; i < Lout; ++i) acc += gorow[i];
      }
      gb[co] += static_cast<float>(acc);
    });
  }
  return grad_in;
}

Tensor Conv1d::ForwardNaive(const Tensor& input) {
  DCAM_CHECK_EQ(input.rank(), 3);
  DCAM_CHECK_EQ(input.dim(1), in_channels_);
  const int64_t B = input.dim(0), L = input.dim(2);
  const int64_t Lout = L + 2 * padding_ - kernel_ + 1;
  DCAM_CHECK_GT(Lout, 0) << "series too short for kernel";
  cached_input_ = input;
  // Invalidate the im2col scratch so a (mismatched) GEMM Backward after a
  // naive forward fails its shape check instead of reusing stale columns.
  col_ = Tensor();

  Tensor out({B, out_channels_, Lout});
  const float* w = weight_.value.data();
  const float* bias = bias_.value.data();
  const float* in = input.data();
  float* o = out.data();
  const int64_t Cin = in_channels_, Cout = out_channels_, K = kernel_,
                P = padding_;

  ParallelFor(0, B, [&](int64_t b) {
    const float* inb = in + b * Cin * L;
    float* ob = o + b * Cout * Lout;
    for (int64_t co = 0; co < Cout; ++co) {
      float* orow = ob + co * Lout;
      if (use_bias_) {
        for (int64_t i = 0; i < Lout; ++i) orow[i] = bias[co];
      }
      for (int64_t ci = 0; ci < Cin; ++ci) {
        const float* irow = inb + ci * L;
        const float* wrow = w + (co * Cin + ci) * K;
        for (int64_t k = 0; k < K; ++k) {
          const float wv = wrow[k];
          // out[i] += wv * in[i + k - P] for valid input index.
          const int64_t lo = std::max<int64_t>(0, P - k);
          const int64_t hi = std::min<int64_t>(Lout, L + P - k);
          const float* ip = irow + lo + k - P;
          float* op = orow + lo;
          for (int64_t i = lo; i < hi; ++i) *op++ += wv * *ip++;
        }
      }
    }
  });
  return out;
}

Tensor Conv1d::BackwardNaive(const Tensor& grad_output) {
  DCAM_CHECK(!cached_input_.empty()) << "Backward before Forward";
  const Tensor& input = cached_input_;
  const int64_t B = input.dim(0), L = input.dim(2);
  const int64_t Lout = grad_output.dim(2);
  DCAM_CHECK_EQ(grad_output.dim(0), B);
  DCAM_CHECK_EQ(grad_output.dim(1), out_channels_);
  const int64_t Cin = in_channels_, Cout = out_channels_, K = kernel_,
                P = padding_;
  const float* w = weight_.value.data();
  const float* in = input.data();
  const float* go = grad_output.data();

  // Gradient w.r.t. input, parallel over batch.
  Tensor grad_in(input.shape());
  float* gi = grad_in.data();
  ParallelFor(0, B, [&](int64_t b) {
    const float* gob = go + b * Cout * Lout;
    float* gib = gi + b * Cin * L;
    for (int64_t co = 0; co < Cout; ++co) {
      const float* gorow = gob + co * Lout;
      for (int64_t ci = 0; ci < Cin; ++ci) {
        float* girow = gib + ci * L;
        const float* wrow = w + (co * Cin + ci) * K;
        for (int64_t k = 0; k < K; ++k) {
          const float wv = wrow[k];
          const int64_t lo = std::max<int64_t>(0, P - k);
          const int64_t hi = std::min<int64_t>(Lout, L + P - k);
          const float* gp = gorow + lo;
          float* ip = girow + lo + k - P;
          for (int64_t i = lo; i < hi; ++i) *ip++ += wv * *gp++;
        }
      }
    }
  });

  // Gradient w.r.t. weights/bias, parallel over output channel (each thread
  // owns a disjoint slice of the gradient tensors).
  float* gw = weight_.grad.data();
  float* gb = bias_.grad.data();
  ParallelFor(0, Cout, [&](int64_t co) {
    double bias_acc = 0.0;
    for (int64_t b = 0; b < B; ++b) {
      const float* gorow = go + (b * Cout + co) * Lout;
      const float* inb = in + b * Cin * L;
      for (int64_t i = 0; i < Lout; ++i) bias_acc += gorow[i];
      for (int64_t ci = 0; ci < Cin; ++ci) {
        const float* irow = inb + ci * L;
        float* gwrow = gw + (co * Cin + ci) * K;
        for (int64_t k = 0; k < K; ++k) {
          const int64_t lo = std::max<int64_t>(0, P - k);
          const int64_t hi = std::min<int64_t>(Lout, L + P - k);
          double acc = 0.0;
          const float* gp = gorow + lo;
          const float* ip = irow + lo + k - P;
          for (int64_t i = lo; i < hi; ++i) acc += *gp++ * *ip++;
          gwrow[k] += static_cast<float>(acc);
        }
      }
    }
    if (use_bias_) gb[co] += static_cast<float>(bias_acc);
  });
  return grad_in;
}

std::vector<Parameter*> Conv1d::Params() {
  if (use_bias_) return {&weight_, &bias_};
  return {&weight_};
}

}  // namespace nn
}  // namespace dcam
