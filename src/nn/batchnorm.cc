#include "nn/batchnorm.h"

#include <cmath>

namespace dcam {
namespace nn {
namespace {

// Decomposes a (B, C, spatial...) tensor into (B, C, S) indices.
struct Dims {
  int64_t batch;
  int64_t channels;
  int64_t spatial;
};

Dims SplitDims(const Tensor& t, int num_features) {
  DCAM_CHECK(t.rank() == 3 || t.rank() == 4)
      << "BatchNorm expects rank 3 or 4, got " << ShapeToString(t.shape());
  DCAM_CHECK_EQ(t.dim(1), num_features);
  int64_t spatial = t.dim(2);
  if (t.rank() == 4) spatial *= t.dim(3);
  return {t.dim(0), t.dim(1), spatial};
}

}  // namespace

BatchNorm::BatchNorm(int num_features, float momentum, float eps)
    : num_features_(num_features),
      momentum_(momentum),
      eps_(eps),
      gamma_("bn.gamma", {num_features}),
      beta_("bn.beta", {num_features}),
      running_mean_({num_features}),
      running_var_({num_features}) {
  gamma_.value.Fill(1.0f);
  running_var_.Fill(1.0f);
}

Tensor BatchNorm::Forward(const Tensor& input, bool training) {
  const Dims d = SplitDims(input, num_features_);
  const int64_t N = d.batch * d.spatial;
  DCAM_CHECK_GT(N, 0);
  cached_training_ = training;

  Tensor out(input.shape());
  cached_xhat_ = Tensor(input.shape());
  cached_invstd_ = Tensor({num_features_});
  const float* in = input.data();
  float* o = out.data();
  float* xh = cached_xhat_.data();

  for (int64_t c = 0; c < d.channels; ++c) {
    double mean, var;
    if (training) {
      double sum = 0.0, sq = 0.0;
      for (int64_t b = 0; b < d.batch; ++b) {
        const float* p = in + (b * d.channels + c) * d.spatial;
        for (int64_t s = 0; s < d.spatial; ++s) {
          sum += p[s];
          sq += static_cast<double>(p[s]) * p[s];
        }
      }
      mean = sum / N;
      var = sq / N - mean * mean;
      if (var < 0.0) var = 0.0;  // numeric guard
      running_mean_[c] = (1.0f - momentum_) * running_mean_[c] +
                         momentum_ * static_cast<float>(mean);
      running_var_[c] = (1.0f - momentum_) * running_var_[c] +
                        momentum_ * static_cast<float>(var);
    } else {
      mean = running_mean_[c];
      var = running_var_[c];
    }
    const float invstd = static_cast<float>(1.0 / std::sqrt(var + eps_));
    cached_invstd_[c] = invstd;
    const float g = gamma_.value[c], bt = beta_.value[c];
    const float m = static_cast<float>(mean);
    for (int64_t b = 0; b < d.batch; ++b) {
      const float* p = in + (b * d.channels + c) * d.spatial;
      float* q = o + (b * d.channels + c) * d.spatial;
      float* xq = xh + (b * d.channels + c) * d.spatial;
      for (int64_t s = 0; s < d.spatial; ++s) {
        const float xhat = (p[s] - m) * invstd;
        xq[s] = xhat;
        q[s] = g * xhat + bt;
      }
    }
  }
  return out;
}

Tensor BatchNorm::Backward(const Tensor& grad_output) {
  DCAM_CHECK(!cached_xhat_.empty()) << "Backward before Forward";
  DCAM_CHECK(grad_output.shape() == cached_xhat_.shape());
  const Dims d = SplitDims(grad_output, num_features_);
  const int64_t N = d.batch * d.spatial;

  Tensor grad_in(grad_output.shape());
  const float* go = grad_output.data();
  const float* xh = cached_xhat_.data();
  float* gi = grad_in.data();

  for (int64_t c = 0; c < d.channels; ++c) {
    double dbeta = 0.0, dgamma = 0.0;
    for (int64_t b = 0; b < d.batch; ++b) {
      const float* g = go + (b * d.channels + c) * d.spatial;
      const float* x = xh + (b * d.channels + c) * d.spatial;
      for (int64_t s = 0; s < d.spatial; ++s) {
        dbeta += g[s];
        dgamma += static_cast<double>(g[s]) * x[s];
      }
    }
    gamma_.grad[c] += static_cast<float>(dgamma);
    beta_.grad[c] += static_cast<float>(dbeta);

    const float g_scale = gamma_.value[c] * cached_invstd_[c];
    if (cached_training_) {
      // Full batch-statistics gradient.
      const float mean_dbeta = static_cast<float>(dbeta / N);
      const float mean_dgamma = static_cast<float>(dgamma / N);
      for (int64_t b = 0; b < d.batch; ++b) {
        const float* g = go + (b * d.channels + c) * d.spatial;
        const float* x = xh + (b * d.channels + c) * d.spatial;
        float* q = gi + (b * d.channels + c) * d.spatial;
        for (int64_t s = 0; s < d.spatial; ++s) {
          q[s] = g_scale * (g[s] - mean_dbeta - x[s] * mean_dgamma);
        }
      }
    } else {
      // Running statistics are constants: plain scaling.
      for (int64_t b = 0; b < d.batch; ++b) {
        const float* g = go + (b * d.channels + c) * d.spatial;
        float* q = gi + (b * d.channels + c) * d.spatial;
        for (int64_t s = 0; s < d.spatial; ++s) q[s] = g_scale * g[s];
      }
    }
  }
  return grad_in;
}

std::vector<Parameter*> BatchNorm::Params() { return {&gamma_, &beta_}; }

}  // namespace nn
}  // namespace dcam
