// ADAM optimizer (Kingma & Ba, 2015) — the optimizer the paper trains every
// architecture with (Section 2, "Learning Phase").

#ifndef DCAM_NN_ADAM_H_
#define DCAM_NN_ADAM_H_

#include <vector>

#include "nn/layer.h"

namespace dcam {
namespace nn {

class Adam {
 public:
  /// `params` must outlive the optimizer.
  explicit Adam(std::vector<Parameter*> params, float lr = 1e-3f,
                float beta1 = 0.9f, float beta2 = 0.999f, float eps = 1e-8f);

  /// Zeroes all parameter gradients.
  void ZeroGrad();

  /// Applies one ADAM update from the accumulated gradients.
  void Step();

  float lr() const { return lr_; }
  void set_lr(float lr) { lr_ = lr; }
  int64_t steps() const { return t_; }

 private:
  std::vector<Parameter*> params_;
  std::vector<Tensor> m_;
  std::vector<Tensor> v_;
  float lr_;
  float beta1_;
  float beta2_;
  float eps_;
  int64_t t_ = 0;
};

}  // namespace nn
}  // namespace dcam

#endif  // DCAM_NN_ADAM_H_
