#include "nn/layer.h"

#include <cmath>

#include "util/rng.h"

namespace dcam {
namespace nn {

void HeUniformInit(Tensor* w, int64_t fan_in, Rng* rng) {
  DCAM_CHECK_GT(fan_in, 0);
  const float bound = std::sqrt(6.0f / static_cast<float>(fan_in));
  w->FillUniform(rng, -bound, bound);
}

void GlorotUniformInit(Tensor* w, int64_t fan_in, int64_t fan_out, Rng* rng) {
  DCAM_CHECK_GT(fan_in + fan_out, 0);
  const float bound = std::sqrt(6.0f / static_cast<float>(fan_in + fan_out));
  w->FillUniform(rng, -bound, bound);
}

}  // namespace nn
}  // namespace dcam
