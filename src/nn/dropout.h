// Inverted dropout (Srivastava et al., 2014).
//
// During training each element is zeroed with probability `rate` and the
// survivors are scaled by 1/(1-rate), so the expected activation is unchanged
// and evaluation mode is the identity. The mask is drawn from an explicitly
// seeded Rng owned by the layer, keeping training runs reproducible like
// every other stochastic component of the library.

#ifndef DCAM_NN_DROPOUT_H_
#define DCAM_NN_DROPOUT_H_

#include <string>

#include "nn/layer.h"
#include "util/rng.h"

namespace dcam {
namespace nn {

class Dropout : public Layer {
 public:
  /// `rate` is the probability of zeroing an element; must be in [0, 1).
  explicit Dropout(float rate, uint64_t seed = 0x5eedULL);

  Tensor Forward(const Tensor& input, bool training) override;
  Tensor Backward(const Tensor& grad_output) override;
  std::string name() const override { return "Dropout"; }

  float rate() const { return rate_; }

 private:
  float rate_;
  Rng rng_;
  /// Scaled keep mask of the last training-mode Forward (empty after an
  /// eval-mode Forward, where Backward is the identity).
  Tensor mask_;
  bool last_training_ = false;
  bool forwarded_ = false;
};

}  // namespace nn
}  // namespace dcam

#endif  // DCAM_NN_DROPOUT_H_
