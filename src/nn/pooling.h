// Pooling and reshaping layers.
//
// GlobalAvgPool is the layer that makes CAM applicable at all (Section 2.2):
// it averages each activation map A_m into a single value so the following
// dense layer's weights w_m^{C_j} linearly score the maps.

#ifndef DCAM_NN_POOLING_H_
#define DCAM_NN_POOLING_H_

#include <string>

#include "nn/layer.h"

namespace dcam {
namespace nn {

/// Averages all spatial positions: (B, C, L) or (B, C, H, W) -> (B, C).
class GlobalAvgPool : public Layer {
 public:
  Tensor Forward(const Tensor& input, bool training) override;
  Tensor Backward(const Tensor& grad_output) override;
  std::string name() const override { return "GlobalAvgPool"; }

 private:
  Shape cached_shape_;
};

/// 1-D max pooling over (B, C, L) with the given kernel/stride/padding.
/// Padded positions are treated as -inf (never selected).
class MaxPool1d : public Layer {
 public:
  MaxPool1d(int kernel, int stride, int padding);

  Tensor Forward(const Tensor& input, bool training) override;
  Tensor Backward(const Tensor& grad_output) override;
  std::string name() const override { return "MaxPool1d"; }

 private:
  int kernel_;
  int stride_;
  int padding_;
  Shape cached_in_shape_;
  std::vector<int64_t> argmax_;  // flat input index per output element
};

/// 2-D max pooling over (B, C, H, W).
class MaxPool2d : public Layer {
 public:
  MaxPool2d(int kernel_h, int kernel_w, int stride_h, int stride_w, int pad_h,
            int pad_w);

  Tensor Forward(const Tensor& input, bool training) override;
  Tensor Backward(const Tensor& grad_output) override;
  std::string name() const override { return "MaxPool2d"; }

 private:
  int kernel_h_, kernel_w_;
  int stride_h_, stride_w_;
  int pad_h_, pad_w_;
  Shape cached_in_shape_;
  std::vector<int64_t> argmax_;
};

/// Flattens (B, ...) -> (B, prod(...)).
class Flatten : public Layer {
 public:
  Tensor Forward(const Tensor& input, bool training) override;
  Tensor Backward(const Tensor& grad_output) override;
  std::string name() const override { return "Flatten"; }

 private:
  Shape cached_shape_;
};

}  // namespace nn
}  // namespace dcam

#endif  // DCAM_NN_POOLING_H_
