#include "nn/sgd.h"

namespace dcam {
namespace nn {

Sgd::Sgd(std::vector<Parameter*> params, float lr, float momentum,
         float weight_decay)
    : params_(std::move(params)),
      lr_(lr),
      momentum_(momentum),
      weight_decay_(weight_decay) {
  DCAM_CHECK_GT(lr, 0.0f);
  DCAM_CHECK_GE(momentum, 0.0f);
  DCAM_CHECK_LT(momentum, 1.0f);
  DCAM_CHECK_GE(weight_decay, 0.0f);
  velocity_.reserve(params_.size());
  for (const Parameter* p : params_) {
    DCAM_CHECK(p != nullptr);
    velocity_.emplace_back(p->value.shape());
  }
}

void Sgd::ZeroGrad() {
  for (Parameter* p : params_) p->ZeroGrad();
}

void Sgd::Step() {
  ++t_;
  for (size_t i = 0; i < params_.size(); ++i) {
    Parameter* p = params_[i];
    float* w = p->value.data();
    const float* g = p->grad.data();
    float* v = velocity_[i].data();
    const int64_t n = p->value.size();
    for (int64_t j = 0; j < n; ++j) {
      const float grad = g[j] + weight_decay_ * w[j];
      v[j] = momentum_ * v[j] + grad;
      w[j] -= lr_ * v[j];
    }
  }
}

}  // namespace nn
}  // namespace dcam
