// Additive temporal-attention pooling (Bahdanau-style), the mechanism behind
// the attention-based series classifiers the paper's Section 2.1 surveys
// (e.g. TapNet).
//
// Input (B, C, n) -> output (B, C): each timestep t is scored by
//   s_t = v . tanh(W x_t + b),          x_t in R^C
// the scores are softmax-normalized over time, and the output is the
// attention-weighted average of the frames. A drop-in alternative to Global
// Average Pooling that learns WHERE to look; unlike GAP it does not admit
// CAM (the paper's precondition), which is precisely why the CAM-family
// methods target GAP-headed networks.

#ifndef DCAM_NN_ATTENTION_H_
#define DCAM_NN_ATTENTION_H_

#include <string>

#include "nn/layer.h"

namespace dcam {

class Rng;

namespace nn {

class TemporalAttention : public Layer {
 public:
  /// `channels` is the input feature count C, `hidden` the attention width a.
  TemporalAttention(int channels, int hidden, Rng* rng);

  Tensor Forward(const Tensor& input, bool training) override;
  Tensor Backward(const Tensor& grad_output) override;
  std::vector<Parameter*> Params() override;
  std::string name() const override { return "TemporalAttention"; }

  /// Attention weights (B, n) of the most recent Forward — the layer's own
  /// (purely temporal) explanation surface.
  const Tensor& last_attention() const { return cached_alpha_; }

 private:
  int channels_;
  int hidden_;
  Parameter w_;  // (hidden, C)
  Parameter b_;  // (hidden)
  Parameter v_;  // (hidden)

  Tensor cached_input_;  // (B, C, n)
  Tensor cached_u_;      // (B, n, hidden) = tanh(W x + b)
  Tensor cached_alpha_;  // (B, n)
};

}  // namespace nn
}  // namespace dcam

#endif  // DCAM_NN_ATTENTION_H_
