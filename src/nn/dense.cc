#include "nn/dense.h"

#include <cstring>

#include "tensor/gemm.h"
#include "tensor/gemm_bf16.h"
#include "tensor/ops.h"
#include "util/rng.h"

namespace dcam {
namespace nn {

Dense::Dense(int in_features, int out_features, Rng* rng, bool use_bias)
    : in_features_(in_features),
      out_features_(out_features),
      use_bias_(use_bias),
      weight_("dense.w", {out_features, in_features}),
      bias_("dense.b", {out_features}) {
  GlorotUniformInit(&weight_.value, in_features, out_features, rng);
}

Tensor Dense::Forward(const Tensor& input, bool training) {
  DCAM_CHECK_EQ(input.rank(), 2);
  DCAM_CHECK_EQ(input.dim(1), in_features_);
  cached_input_ = input;
  // (B, in) x (out, in)^T -> (B, out), accumulating onto bias-filled rows
  // (beta = 1) so the bias add costs no extra pass.
  const int64_t B = input.dim(0);
  Tensor out({B, out_features_});
  float beta = 0.0f;
  if (use_bias_) {
    float* po = out.data();
    for (int64_t b = 0; b < B; ++b) {
      std::memcpy(po + b * out_features_, bias_.value.data(),
                  static_cast<size_t>(out_features_) * sizeof(float));
    }
    beta = 1.0f;
  }
  if (!training && gemm::CurrentGemmPrecision() == gemm::Precision::kBf16) {
    // Inference-only bf16 head: both operands rounded at pack time; the
    // float32 scratch-free layout makes this a pure drop-in.
    gemm::SgemmBf16(false, true, B, out_features_, in_features_, 1.0f,
                    input.data(), in_features_, weight_.value.data(),
                    in_features_, beta, out.data(), out_features_);
    return out;
  }
  gemm::SgemmNT(B, out_features_, in_features_, 1.0f, input.data(),
                weight_.value.data(), beta, out.data());
  return out;
}

Tensor Dense::Backward(const Tensor& grad_output) {
  DCAM_CHECK(!cached_input_.empty()) << "Backward before Forward";
  DCAM_CHECK_EQ(grad_output.rank(), 2);
  DCAM_CHECK_EQ(grad_output.dim(0), cached_input_.dim(0));
  DCAM_CHECK_EQ(grad_output.dim(1), out_features_);
  // dW (out, in) += dY (B, out)^T X (B, in), beta = 1 accumulating straight
  // into the parameter gradient (no temporary).
  gemm::SgemmTN(out_features_, in_features_, grad_output.dim(0), 1.0f,
                grad_output.data(), cached_input_.data(), 1.0f,
                weight_.grad.data());
  if (use_bias_) {
    const int64_t B = grad_output.dim(0);
    for (int64_t j = 0; j < out_features_; ++j) {
      double acc = 0.0;
      for (int64_t b = 0; b < B; ++b) acc += grad_output.at(b, j);
      bias_.grad[j] += static_cast<float>(acc);
    }
  }
  // dX = dY W : (B, out) x (out, in) -> (B, in)
  return ops::MatMul(grad_output, weight_.value);
}

std::vector<Parameter*> Dense::Params() {
  if (use_bias_) return {&weight_, &bias_};
  return {&weight_};
}

}  // namespace nn
}  // namespace dcam
