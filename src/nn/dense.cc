#include "nn/dense.h"

#include "tensor/ops.h"
#include "util/rng.h"

namespace dcam {
namespace nn {

Dense::Dense(int in_features, int out_features, Rng* rng, bool use_bias)
    : in_features_(in_features),
      out_features_(out_features),
      use_bias_(use_bias),
      weight_("dense.w", {out_features, in_features}),
      bias_("dense.b", {out_features}) {
  GlorotUniformInit(&weight_.value, in_features, out_features, rng);
}

Tensor Dense::Forward(const Tensor& input, bool /*training*/) {
  DCAM_CHECK_EQ(input.rank(), 2);
  DCAM_CHECK_EQ(input.dim(1), in_features_);
  cached_input_ = input;
  // (B, in) x (out, in)^T -> (B, out)
  Tensor out = ops::MatMulBT(input, weight_.value);
  if (use_bias_) {
    const int64_t B = out.dim(0);
    for (int64_t b = 0; b < B; ++b) {
      for (int64_t j = 0; j < out_features_; ++j) {
        out.at(b, j) += bias_.value[j];
      }
    }
  }
  return out;
}

Tensor Dense::Backward(const Tensor& grad_output) {
  DCAM_CHECK(!cached_input_.empty()) << "Backward before Forward";
  DCAM_CHECK_EQ(grad_output.rank(), 2);
  DCAM_CHECK_EQ(grad_output.dim(1), out_features_);
  // dW = dY^T X : (out, B)^T x ... -> use MatMulAT(grad, input): (B,out)^T(B,in)
  Tensor dw = ops::MatMulAT(grad_output, cached_input_);  // (out, in)
  ops::AddInPlace(&weight_.grad, dw);
  if (use_bias_) {
    const int64_t B = grad_output.dim(0);
    for (int64_t j = 0; j < out_features_; ++j) {
      double acc = 0.0;
      for (int64_t b = 0; b < B; ++b) acc += grad_output.at(b, j);
      bias_.grad[j] += static_cast<float>(acc);
    }
  }
  // dX = dY W : (B, out) x (out, in) -> (B, in)
  return ops::MatMul(grad_output, weight_.value);
}

std::vector<Parameter*> Dense::Params() {
  if (use_bias_) return {&weight_, &bias_};
  return {&weight_};
}

}  // namespace nn
}  // namespace dcam
