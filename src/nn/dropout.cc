#include "nn/dropout.h"

namespace dcam {
namespace nn {

Dropout::Dropout(float rate, uint64_t seed) : rate_(rate), rng_(seed) {
  DCAM_CHECK_GE(rate, 0.0f);
  DCAM_CHECK_LT(rate, 1.0f);
}

Tensor Dropout::Forward(const Tensor& input, bool training) {
  forwarded_ = true;
  last_training_ = training;
  if (!training || rate_ == 0.0f) {
    mask_ = Tensor();
    return input;
  }
  const float scale = 1.0f / (1.0f - rate_);
  mask_ = Tensor(input.shape());
  Tensor out(input.shape());
  const float* in = input.data();
  float* m = mask_.data();
  float* o = out.data();
  for (int64_t i = 0; i < input.size(); ++i) {
    const bool keep = rng_.Uniform() >= rate_;
    m[i] = keep ? scale : 0.0f;
    o[i] = in[i] * m[i];
  }
  return out;
}

Tensor Dropout::Backward(const Tensor& grad_output) {
  DCAM_CHECK(forwarded_) << "Backward before Forward";
  if (!last_training_ || rate_ == 0.0f) return grad_output;
  DCAM_CHECK(grad_output.shape() == mask_.shape());
  Tensor grad_in(grad_output.shape());
  const float* g = grad_output.data();
  const float* m = mask_.data();
  float* q = grad_in.data();
  for (int64_t i = 0; i < grad_output.size(); ++i) q[i] = g[i] * m[i];
  return grad_in;
}

}  // namespace nn
}  // namespace dcam
