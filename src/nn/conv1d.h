// 1-D convolution over (batch, channels, length) tensors.
//
// Used by the standard CNN/ResNet/InceptionTime baselines, which mix all
// input dimensions in their first layer (Section 2.1 of the paper).

#ifndef DCAM_NN_CONV1D_H_
#define DCAM_NN_CONV1D_H_

#include <cstdint>
#include <string>
#include <vector>

#include "nn/layer.h"

namespace dcam {
namespace nn {

/// Conv1d with stride 1 and symmetric zero padding.
/// Input (B, Cin, L) -> output (B, Cout, L + 2*padding - kernel + 1).
///
/// Forward/Backward lower the convolution to im2col + SGEMM (tensor/gemm.h)
/// with persistent per-layer scratch; the direct per-element loops survive
/// as ForwardNaive/BackwardNaive, the reference the equivalence tests and
/// naive-vs-kernel benchmarks compare against.
class Conv1d : public Layer {
 public:
  Conv1d(int in_channels, int out_channels, int kernel, int padding, Rng* rng,
         bool use_bias = true);

  Tensor Forward(const Tensor& input, bool training) override;
  Tensor Backward(const Tensor& grad_output) override;

  /// Direct-convolution reference path, numerically equivalent to
  /// Forward/Backward up to float summation order. ForwardNaive sets the
  /// input cache BackwardNaive consumes but invalidates the im2col scratch,
  /// so pairing it with the GEMM Backward aborts instead of silently using
  /// stale columns (BackwardNaive after Forward is fine).
  Tensor ForwardNaive(const Tensor& input);
  Tensor BackwardNaive(const Tensor& grad_output);

  std::vector<Parameter*> Params() override;
  std::string name() const override { return "Conv1d"; }

  int in_channels() const { return in_channels_; }
  int out_channels() const { return out_channels_; }
  int kernel() const { return kernel_; }
  int padding() const { return padding_; }

  Parameter& weight() { return weight_; }
  Parameter& bias() { return bias_; }

 private:
  int in_channels_;
  int out_channels_;
  int kernel_;
  int padding_;
  bool use_bias_;
  Parameter weight_;  // (Cout, Cin, K)
  Parameter bias_;    // (Cout)
  Tensor cached_input_;
  // Persistent im2col scratch: col_ holds the lowered input for the whole
  // batch, (B, Cin*K, Lout), built in Forward and reused by the weight
  // gradient; dcol_, same shape, is what the input gradient scatters from
  // (per-instance slices, parallel over the batch).
  Tensor col_;
  Tensor dcol_;
  // bf16 lowering scratch for the inference-only reduced-precision forward
  // (gemm::Precision::kBf16); Forward invalidates col_ on that path so
  // Backward cannot consume stale float32 columns.
  std::vector<uint16_t> col16_;
};

}  // namespace nn
}  // namespace dcam

#endif  // DCAM_NN_CONV1D_H_
