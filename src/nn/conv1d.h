// 1-D convolution over (batch, channels, length) tensors.
//
// Used by the standard CNN/ResNet/InceptionTime baselines, which mix all
// input dimensions in their first layer (Section 2.1 of the paper).

#ifndef DCAM_NN_CONV1D_H_
#define DCAM_NN_CONV1D_H_

#include <string>
#include <vector>

#include "nn/layer.h"

namespace dcam {
namespace nn {

/// Conv1d with stride 1 and symmetric zero padding.
/// Input (B, Cin, L) -> output (B, Cout, L + 2*padding - kernel + 1).
class Conv1d : public Layer {
 public:
  Conv1d(int in_channels, int out_channels, int kernel, int padding, Rng* rng,
         bool use_bias = true);

  Tensor Forward(const Tensor& input, bool training) override;
  Tensor Backward(const Tensor& grad_output) override;
  std::vector<Parameter*> Params() override;
  std::string name() const override { return "Conv1d"; }

  int in_channels() const { return in_channels_; }
  int out_channels() const { return out_channels_; }
  int kernel() const { return kernel_; }
  int padding() const { return padding_; }

  Parameter& weight() { return weight_; }
  Parameter& bias() { return bias_; }

 private:
  int in_channels_;
  int out_channels_;
  int kernel_;
  int padding_;
  bool use_bias_;
  Parameter weight_;  // (Cout, Cin, K)
  Parameter bias_;    // (Cout)
  Tensor cached_input_;
};

}  // namespace nn
}  // namespace dcam

#endif  // DCAM_NN_CONV1D_H_
