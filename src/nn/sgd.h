// Stochastic gradient descent with classical momentum and optional L2 weight
// decay.
//
// The paper trains everything with ADAM (Section 2, "Learning Phase"); SGD is
// provided as the textbook alternative so the training pipeline can be
// ablated against the optimizer choice (bench_ablation) and so downstream
// users porting recipes that were tuned for SGD have a drop-in.

#ifndef DCAM_NN_SGD_H_
#define DCAM_NN_SGD_H_

#include <vector>

#include "nn/layer.h"

namespace dcam {
namespace nn {

class Sgd {
 public:
  /// `params` must outlive the optimizer. `momentum` = 0 recovers plain SGD;
  /// `weight_decay` adds decay * w to every gradient before the update.
  explicit Sgd(std::vector<Parameter*> params, float lr = 1e-2f,
               float momentum = 0.0f, float weight_decay = 0.0f);

  /// Zeroes all parameter gradients.
  void ZeroGrad();

  /// Applies one update: v <- momentum * v + g; w <- w - lr * v.
  void Step();

  float lr() const { return lr_; }
  void set_lr(float lr) { lr_ = lr; }
  int64_t steps() const { return t_; }

 private:
  std::vector<Parameter*> params_;
  std::vector<Tensor> velocity_;
  float lr_;
  float momentum_;
  float weight_decay_;
  int64_t t_ = 0;
};

}  // namespace nn
}  // namespace dcam

#endif  // DCAM_NN_SGD_H_
