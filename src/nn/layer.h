// Layer abstraction for the from-scratch neural-network stack.
//
// Design: explicit forward/backward methods with per-layer caches rather than
// a tape-based autograd. Every architecture in the paper (CNN, ResNet,
// InceptionTime and their c-/d- variants, MTEX-CNN, RNN/LSTM/GRU) is a static
// graph of these layers, so reverse-mode through an explicit structure is
// simpler, faster, and easier to verify by finite differences.

#ifndef DCAM_NN_LAYER_H_
#define DCAM_NN_LAYER_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "tensor/tensor.h"

namespace dcam {

class Rng;

namespace nn {

/// A trainable tensor together with its gradient accumulator.
struct Parameter {
  std::string name;
  Tensor value;
  Tensor grad;

  Parameter() = default;
  Parameter(std::string n, Shape shape)
      : name(std::move(n)), value(shape), grad(shape) {}

  void ZeroGrad() { grad.Fill(0.0f); }
};

/// Base class of all layers.
///
/// Contract: Backward(grad_out) must be called after a matching Forward()
/// (layers cache activations), consumes the gradient w.r.t. the layer output,
/// accumulates parameter gradients (+=), and returns the gradient w.r.t. the
/// layer input.
class Layer {
 public:
  virtual ~Layer() = default;

  /// Runs the layer. `training` toggles batch-statistics vs running-statistics
  /// behaviour in normalization layers.
  virtual Tensor Forward(const Tensor& input, bool training) = 0;

  /// Reverse-mode step; see class contract.
  virtual Tensor Backward(const Tensor& grad_output) = 0;

  /// Trainable parameters (empty for stateless layers).
  virtual std::vector<Parameter*> Params() { return {}; }

  /// Named non-trainable state that must survive serialization — e.g. the
  /// running statistics of BatchNorm. Optimizers never touch these; model
  /// save/load persists them alongside Params().
  virtual std::vector<std::pair<std::string, Tensor*>> Buffers() { return {}; }

  /// Short diagnostic name.
  virtual std::string name() const = 0;
};

/// He-uniform initialization (appropriate for ReLU networks): U[-b, b] with
/// b = sqrt(6 / fan_in).
void HeUniformInit(Tensor* w, int64_t fan_in, Rng* rng);

/// Glorot-uniform initialization: U[-b, b] with b = sqrt(6 / (fan_in+fan_out)).
void GlorotUniformInit(Tensor* w, int64_t fan_in, int64_t fan_out, Rng* rng);

}  // namespace nn
}  // namespace dcam

#endif  // DCAM_NN_LAYER_H_
