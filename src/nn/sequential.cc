#include "nn/sequential.h"

namespace dcam {
namespace nn {

Layer* Sequential::Add(std::unique_ptr<Layer> layer) {
  layers_.push_back(std::move(layer));
  return layers_.back().get();
}

Tensor Sequential::Forward(const Tensor& input, bool training) {
  DCAM_CHECK(!layers_.empty());
  outputs_.clear();
  outputs_.reserve(layers_.size());
  Tensor x = input;
  for (auto& layer : layers_) {
    x = layer->Forward(x, training);
    outputs_.push_back(x);
  }
  return x;
}

Tensor Sequential::Backward(const Tensor& grad_output) {
  DCAM_CHECK_EQ(outputs_.size(), layers_.size()) << "Backward before Forward";
  output_grads_.assign(layers_.size(), Tensor());
  Tensor g = grad_output;
  for (int i = static_cast<int>(layers_.size()) - 1; i >= 0; --i) {
    output_grads_[i] = g;
    g = layers_[i]->Backward(g);
  }
  return g;
}

std::vector<Parameter*> Sequential::Params() {
  std::vector<Parameter*> params;
  for (auto& layer : layers_) {
    for (Parameter* p : layer->Params()) params.push_back(p);
  }
  return params;
}

std::vector<std::pair<std::string, Tensor*>> Sequential::Buffers() {
  std::vector<std::pair<std::string, Tensor*>> buffers;
  for (auto& layer : layers_) {
    for (auto& b : layer->Buffers()) buffers.push_back(std::move(b));
  }
  return buffers;
}

const Tensor& Sequential::layer_output(int i) const {
  DCAM_CHECK_GE(i, 0);
  DCAM_CHECK_LT(i, static_cast<int>(outputs_.size()));
  return outputs_[i];
}

const Tensor& Sequential::layer_output_grad(int i) const {
  DCAM_CHECK_GE(i, 0);
  DCAM_CHECK_LT(i, static_cast<int>(output_grads_.size()));
  return output_grads_[i];
}

}  // namespace nn
}  // namespace dcam
