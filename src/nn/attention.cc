#include "nn/attention.h"

#include <cmath>

#include "util/rng.h"

namespace dcam {
namespace nn {

TemporalAttention::TemporalAttention(int channels, int hidden, Rng* rng)
    : channels_(channels),
      hidden_(hidden),
      w_("attn_w", {hidden, channels}),
      b_("attn_b", {hidden}),
      v_("attn_v", {hidden}) {
  DCAM_CHECK_GE(channels, 1);
  DCAM_CHECK_GE(hidden, 1);
  DCAM_CHECK(rng != nullptr);
  GlorotUniformInit(&w_.value, channels, hidden, rng);
  GlorotUniformInit(&v_.value, hidden, 1, rng);
}

Tensor TemporalAttention::Forward(const Tensor& input, bool /*training*/) {
  DCAM_CHECK_EQ(input.rank(), 3);
  DCAM_CHECK_EQ(input.dim(1), channels_);
  const int64_t B = input.dim(0), C = input.dim(1), n = input.dim(2);
  cached_input_ = input;
  cached_u_ = Tensor({B, n, hidden_});
  cached_alpha_ = Tensor({B, n});
  Tensor out({B, C});

  for (int64_t i = 0; i < B; ++i) {
    // Scores s_t = v . tanh(W x_t + b).
    std::vector<double> scores(static_cast<size_t>(n));
    double max_score = -1e300;
    for (int64_t t = 0; t < n; ++t) {
      double s = 0.0;
      for (int h = 0; h < hidden_; ++h) {
        double z = b_.value[h];
        for (int64_t c = 0; c < C; ++c) {
          z += w_.value.at(h, c) * input.at(i, c, t);
        }
        const float u = std::tanh(static_cast<float>(z));
        cached_u_.at(i, t, h) = u;
        s += static_cast<double>(v_.value[h]) * u;
      }
      scores[static_cast<size_t>(t)] = s;
      max_score = std::max(max_score, s);
    }
    // Softmax over time.
    double denom = 0.0;
    for (int64_t t = 0; t < n; ++t) {
      const double e = std::exp(scores[static_cast<size_t>(t)] - max_score);
      cached_alpha_.at(i, t) = static_cast<float>(e);
      denom += e;
    }
    for (int64_t t = 0; t < n; ++t) {
      cached_alpha_.at(i, t) /= static_cast<float>(denom);
    }
    // Weighted average of frames.
    for (int64_t c = 0; c < C; ++c) {
      double s = 0.0;
      for (int64_t t = 0; t < n; ++t) {
        s += static_cast<double>(cached_alpha_.at(i, t)) * input.at(i, c, t);
      }
      out.at(i, c) = static_cast<float>(s);
    }
  }
  return out;
}

Tensor TemporalAttention::Backward(const Tensor& grad_output) {
  DCAM_CHECK(!cached_input_.empty()) << "Backward before Forward";
  const Tensor& x = cached_input_;
  const int64_t B = x.dim(0), C = x.dim(1), n = x.dim(2);
  DCAM_CHECK(grad_output.shape() == (Shape{B, C}));

  Tensor grad_in({B, C, n});
  for (int64_t i = 0; i < B; ++i) {
    // d out / d alpha_t = x_t; chain to ds via softmax Jacobian.
    std::vector<double> dalpha(static_cast<size_t>(n), 0.0);
    for (int64_t t = 0; t < n; ++t) {
      double g = 0.0;
      for (int64_t c = 0; c < C; ++c) {
        g += static_cast<double>(grad_output.at(i, c)) * x.at(i, c, t);
      }
      dalpha[static_cast<size_t>(t)] = g;
    }
    double avg = 0.0;
    for (int64_t t = 0; t < n; ++t) {
      avg += dalpha[static_cast<size_t>(t)] * cached_alpha_.at(i, t);
    }
    std::vector<double> dscore(static_cast<size_t>(n));
    for (int64_t t = 0; t < n; ++t) {
      dscore[static_cast<size_t>(t)] =
          cached_alpha_.at(i, t) * (dalpha[static_cast<size_t>(t)] - avg);
    }

    for (int64_t t = 0; t < n; ++t) {
      const double ds = dscore[static_cast<size_t>(t)];
      // Direct path: out = sum_t alpha_t x_t.
      for (int64_t c = 0; c < C; ++c) {
        grad_in.at(i, c, t) +=
            cached_alpha_.at(i, t) * grad_output.at(i, c);
      }
      // Score path: s_t = v . tanh(W x_t + b).
      for (int h = 0; h < hidden_; ++h) {
        const double u = cached_u_.at(i, t, h);
        const double du = ds * v_.value[h] * (1.0 - u * u);
        v_.grad[h] += static_cast<float>(ds * u);
        b_.grad[h] += static_cast<float>(du);
        for (int64_t c = 0; c < C; ++c) {
          w_.grad.at(h, c) += static_cast<float>(du * x.at(i, c, t));
          grad_in.at(i, c, t) +=
              static_cast<float>(du * w_.value.at(h, c));
        }
      }
    }
  }
  return grad_in;
}

std::vector<Parameter*> TemporalAttention::Params() {
  return {&w_, &b_, &v_};
}

}  // namespace nn
}  // namespace dcam
