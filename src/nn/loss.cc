#include "nn/loss.h"

#include <cmath>

#include "tensor/ops.h"
#include "util/check.h"

namespace dcam {
namespace nn {

double SoftmaxCrossEntropy::Forward(const Tensor& logits,
                                    const std::vector<int>& labels) {
  DCAM_CHECK_EQ(logits.rank(), 2);
  DCAM_CHECK_EQ(logits.dim(0), static_cast<int64_t>(labels.size()));
  probs_ = ops::Softmax2d(logits);
  labels_ = labels;
  const int64_t B = logits.dim(0);
  double loss = 0.0;
  for (int64_t b = 0; b < B; ++b) {
    DCAM_CHECK_GE(labels[b], 0);
    DCAM_CHECK_LT(labels[b], logits.dim(1));
    const double p = std::max(1e-12, static_cast<double>(probs_.at(b, labels[b])));
    loss -= std::log(p);
  }
  return loss / static_cast<double>(B);
}

Tensor SoftmaxCrossEntropy::Backward() const {
  DCAM_CHECK(!probs_.empty()) << "Backward before Forward";
  const int64_t B = probs_.dim(0), C = probs_.dim(1);
  Tensor grad(probs_.shape());
  const float inv_b = 1.0f / static_cast<float>(B);
  for (int64_t b = 0; b < B; ++b) {
    for (int64_t c = 0; c < C; ++c) {
      float g = probs_.at(b, c);
      if (c == labels_[b]) g -= 1.0f;
      grad.at(b, c) = g * inv_b;
    }
  }
  return grad;
}

}  // namespace nn
}  // namespace dcam
