// Training pipeline: ADAM + cross-entropy mini-batch training with a
// stratified train/validation split and early stopping, mirroring the
// paper's setup (Section 5.2). The best-validation-loss weights are restored
// at the end of training.

#ifndef DCAM_EVAL_TRAINER_H_
#define DCAM_EVAL_TRAINER_H_

#include <cstdint>
#include <vector>

#include "data/series.h"
#include "models/model.h"

namespace dcam {
namespace eval {

/// Optimizer family. The paper uses ADAM throughout (Section 2, "Learning
/// Phase"); SGD + momentum is provided for ablation.
enum class Optimizer { kAdam, kSgd };

/// Per-epoch learning-rate schedule applied on top of TrainConfig::lr.
enum class LrSchedule {
  kConstant,
  /// lr * gamma^floor(epoch / step_epochs).
  kStepDecay,
  /// Half-cosine from lr to ~0 across max_epochs.
  kCosine,
};

struct TrainConfig {
  int max_epochs = 60;
  int batch_size = 16;
  /// The paper trains with lr=1e-5 for up to 1000 epochs; on a CPU budget we
  /// default to a larger step and fewer epochs (same optimizer and loss).
  float lr = 1e-3f;
  /// Early stopping: stop after `patience` epochs without val-loss
  /// improvement, and restore the best-validation-loss state (parameters
  /// and normalization buffers). <= 0 disables early stopping entirely: the
  /// model trains to max_epochs and keeps its final state.
  int patience = 8;
  /// Fraction of the provided data used for training; the rest validates.
  double train_fraction = 0.8;
  uint64_t seed = 123;
  bool verbose = false;

  Optimizer optimizer = Optimizer::kAdam;
  /// SGD momentum (ignored by ADAM).
  float momentum = 0.9f;

  LrSchedule schedule = LrSchedule::kConstant;
  /// Step-decay parameters (ignored by other schedules).
  int step_epochs = 20;
  float step_gamma = 0.5f;

  /// Global gradient-norm clipping threshold; <= 0 disables clipping.
  double max_grad_norm = 0.0;
};

/// Learning rate for `epoch` (1-based) under the config's schedule. Exposed
/// for tests.
float ScheduledLr(const TrainConfig& config, int epoch);

/// Scales every gradient so the global L2 norm is at most `max_norm`.
/// Returns the pre-clip norm. No-op (returns the norm) when already within
/// bounds.
double ClipGradientNorm(const std::vector<nn::Parameter*>& params,
                        double max_norm);

struct TrainResult {
  double train_acc = 0.0;
  double val_acc = 0.0;
  double best_val_loss = 0.0;
  int epochs_run = 0;
  /// Epoch index (1-based) at which the best validation loss was reached.
  int best_epoch = 0;
  std::vector<double> val_loss_history;
  double seconds = 0.0;
};

/// Trains `model` on `dataset` (internally split into train/val).
TrainResult Train(models::Model* model, const data::Dataset& dataset,
                  const TrainConfig& config);

/// Mean loss + accuracy of `model` over `dataset` in eval mode.
struct EvalResult {
  double loss = 0.0;
  double accuracy = 0.0;
};
EvalResult Evaluate(models::Model* model, const data::Dataset& dataset,
                    int batch_size = 16);

}  // namespace eval
}  // namespace dcam

#endif  // DCAM_EVAL_TRAINER_H_
