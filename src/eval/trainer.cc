#include "eval/trainer.h"

#include <cstdio>
#include <limits>

#include <cmath>

#include "nn/adam.h"
#include "nn/sgd.h"
#include "nn/loss.h"
#include "util/rng.h"
#include "util/stopwatch.h"

namespace dcam {
namespace eval {
namespace {

// Copies rows `indices` of the dataset into a (B, D, n) batch + labels.
void MakeBatch(const data::Dataset& ds, const std::vector<int64_t>& indices,
               size_t begin, size_t end, Tensor* batch,
               std::vector<int>* labels) {
  const int64_t B = static_cast<int64_t>(end - begin);
  const int64_t D = ds.dims(), n = ds.length();
  *batch = Tensor({B, D, n});
  labels->resize(B);
  for (int64_t j = 0; j < B; ++j) {
    const int64_t i = indices[begin + j];
    std::copy(ds.X.data() + i * D * n, ds.X.data() + (i + 1) * D * n,
              batch->data() + j * D * n);
    (*labels)[j] = ds.y[i];
  }
}

// Full model state: parameters AND buffers (BatchNorm running statistics).
// Early stopping must restore both, or the best-epoch weights run with
// final-epoch normalization statistics.
struct StateSnapshot {
  std::vector<Tensor> params;
  std::vector<Tensor> buffers;
  bool empty() const { return params.empty() && buffers.empty(); }
};

StateSnapshot SnapshotState(models::Model* model) {
  StateSnapshot out;
  for (nn::Parameter* p : model->Params()) {
    out.params.push_back(p->value.Clone());
  }
  for (auto& [name, tensor] : model->Buffers()) {
    out.buffers.push_back(tensor->Clone());
  }
  return out;
}

void RestoreState(models::Model* model, const StateSnapshot& snapshot) {
  const std::vector<nn::Parameter*> params = model->Params();
  DCAM_CHECK_EQ(params.size(), snapshot.params.size());
  for (size_t i = 0; i < params.size(); ++i) {
    std::copy(snapshot.params[i].data(),
              snapshot.params[i].data() + snapshot.params[i].size(),
              params[i]->value.data());
  }
  const auto buffers = model->Buffers();
  DCAM_CHECK_EQ(buffers.size(), snapshot.buffers.size());
  for (size_t i = 0; i < buffers.size(); ++i) {
    std::copy(snapshot.buffers[i].data(),
              snapshot.buffers[i].data() + snapshot.buffers[i].size(),
              buffers[i].second->data());
  }
}

// Uniform handle over the two optimizer families.
struct OptimizerHandle {
  std::unique_ptr<nn::Adam> adam;
  std::unique_ptr<nn::Sgd> sgd;

  static OptimizerHandle Make(const TrainConfig& config,
                              std::vector<nn::Parameter*> params) {
    OptimizerHandle h;
    if (config.optimizer == Optimizer::kAdam) {
      h.adam = std::make_unique<nn::Adam>(std::move(params), config.lr);
    } else {
      h.sgd = std::make_unique<nn::Sgd>(std::move(params), config.lr,
                                        config.momentum);
    }
    return h;
  }
  void ZeroGrad() { adam ? adam->ZeroGrad() : sgd->ZeroGrad(); }
  void Step() { adam ? adam->Step() : sgd->Step(); }
  void SetLr(float lr) { adam ? adam->set_lr(lr) : sgd->set_lr(lr); }
};

}  // namespace

float ScheduledLr(const TrainConfig& config, int epoch) {
  DCAM_CHECK_GE(epoch, 1);
  switch (config.schedule) {
    case LrSchedule::kConstant:
      return config.lr;
    case LrSchedule::kStepDecay: {
      DCAM_CHECK_GT(config.step_epochs, 0);
      const int drops = (epoch - 1) / config.step_epochs;
      float lr = config.lr;
      for (int i = 0; i < drops; ++i) lr *= config.step_gamma;
      return lr;
    }
    case LrSchedule::kCosine: {
      const double progress = static_cast<double>(epoch - 1) /
                              std::max(1, config.max_epochs - 1);
      return static_cast<float>(config.lr * 0.5 *
                                (1.0 + std::cos(3.14159265358979 * progress)));
    }
  }
  return config.lr;
}

double ClipGradientNorm(const std::vector<nn::Parameter*>& params,
                        double max_norm) {
  DCAM_CHECK_GT(max_norm, 0.0);
  double sq = 0.0;
  for (const nn::Parameter* p : params) {
    for (int64_t i = 0; i < p->grad.size(); ++i) {
      sq += static_cast<double>(p->grad[i]) * p->grad[i];
    }
  }
  const double norm = std::sqrt(sq);
  if (norm > max_norm) {
    const float scale = static_cast<float>(max_norm / norm);
    for (const nn::Parameter* p : params) {
      float* g = const_cast<nn::Parameter*>(p)->grad.data();
      for (int64_t i = 0; i < p->grad.size(); ++i) g[i] *= scale;
    }
  }
  return norm;
}

EvalResult Evaluate(models::Model* model, const data::Dataset& dataset,
                    int batch_size) {
  DCAM_CHECK(model != nullptr);
  DCAM_CHECK_GT(dataset.size(), 0);
  nn::SoftmaxCrossEntropy loss;
  std::vector<int64_t> indices(dataset.size());
  for (int64_t i = 0; i < dataset.size(); ++i) indices[i] = i;

  double loss_sum = 0.0;
  int64_t correct = 0;
  for (size_t begin = 0; begin < indices.size();
       begin += static_cast<size_t>(batch_size)) {
    const size_t end =
        std::min(indices.size(), begin + static_cast<size_t>(batch_size));
    Tensor batch;
    std::vector<int> labels;
    MakeBatch(dataset, indices, begin, end, &batch, &labels);
    Tensor logits =
        model->Forward(model->PrepareInput(batch), /*training=*/false);
    loss_sum += loss.Forward(logits, labels) * static_cast<double>(end - begin);
    for (size_t j = 0; j < labels.size(); ++j) {
      int64_t best = 0;
      for (int64_t c = 1; c < logits.dim(1); ++c) {
        if (logits.at(j, c) > logits.at(j, best)) best = c;
      }
      if (best == labels[j]) ++correct;
    }
  }
  EvalResult out;
  out.loss = loss_sum / static_cast<double>(dataset.size());
  out.accuracy = static_cast<double>(correct) / dataset.size();
  return out;
}

TrainResult Train(models::Model* model, const data::Dataset& dataset,
                  const TrainConfig& config) {
  DCAM_CHECK(model != nullptr);
  DCAM_CHECK_GT(config.max_epochs, 0);
  DCAM_CHECK_GT(config.batch_size, 0);

  Rng rng(config.seed);
  data::Dataset train, val;
  data::StratifiedSplit(dataset, config.train_fraction, &rng, &train, &val);

  std::vector<nn::Parameter*> params = model->Params();
  OptimizerHandle optimizer = OptimizerHandle::Make(config, params);
  nn::SoftmaxCrossEntropy loss;

  TrainResult result;
  double best_val = std::numeric_limits<double>::infinity();
  StateSnapshot best_snapshot;
  int since_best = 0;
  Stopwatch watch;

  std::vector<int64_t> order(train.size());
  for (int64_t i = 0; i < train.size(); ++i) order[i] = i;

  for (int epoch = 1; epoch <= config.max_epochs; ++epoch) {
    optimizer.SetLr(ScheduledLr(config, epoch));
    rng.Shuffle(&order);
    for (size_t begin = 0; begin < order.size();
         begin += static_cast<size_t>(config.batch_size)) {
      const size_t end = std::min(
          order.size(), begin + static_cast<size_t>(config.batch_size));
      Tensor batch;
      std::vector<int> labels;
      MakeBatch(train, order, begin, end, &batch, &labels);
      optimizer.ZeroGrad();
      Tensor logits =
          model->Forward(model->PrepareInput(batch), /*training=*/true);
      loss.Forward(logits, labels);
      model->Backward(loss.Backward());
      if (config.max_grad_norm > 0.0) {
        ClipGradientNorm(params, config.max_grad_norm);
      }
      optimizer.Step();
    }

    const EvalResult val_eval = Evaluate(model, val, config.batch_size);
    result.val_loss_history.push_back(val_eval.loss);
    result.epochs_run = epoch;
    if (config.verbose) {
      std::fprintf(stderr, "[train] %s epoch %d val_loss=%.4f val_acc=%.3f\n",
                   model->name().c_str(), epoch, val_eval.loss,
                   val_eval.accuracy);
    }
    if (val_eval.loss < best_val - 1e-6) {
      best_val = val_eval.loss;
      result.best_epoch = epoch;
      // Snapshot only when early stopping is on: restoring a "best" epoch
      // chosen by a small validation split is noise, not selection, when the
      // caller asked to train to the end.
      if (config.patience > 0) best_snapshot = SnapshotState(model);
      since_best = 0;
    } else if (config.patience > 0 && ++since_best >= config.patience) {
      break;
    }
  }

  if (!best_snapshot.empty()) RestoreState(model, best_snapshot);
  result.best_val_loss = best_val;
  result.train_acc = Evaluate(model, train, config.batch_size).accuracy;
  result.val_acc = Evaluate(model, val, config.batch_size).accuracy;
  result.seconds = watch.ElapsedSeconds();
  return result;
}

}  // namespace eval
}  // namespace dcam
