// Average-rank computation across datasets (the "Rank" row of the paper's
// Tables 2 and 3): for each dataset, methods are ranked by score (1 = best,
// ties receive the average of the tied ranks); the summary is the mean rank
// of each method over all datasets.

#ifndef DCAM_EVAL_RANKING_H_
#define DCAM_EVAL_RANKING_H_

#include <vector>

namespace dcam {
namespace eval {

/// Ranks one score row (higher is better). Returns rank per entry.
std::vector<double> RankRow(const std::vector<double>& scores);

/// scores[dataset][method] -> mean rank per method.
std::vector<double> AverageRanks(
    const std::vector<std::vector<double>>& scores);

/// Column means of scores[dataset][method].
std::vector<double> ColumnMeans(
    const std::vector<std::vector<double>>& scores);

}  // namespace eval
}  // namespace dcam

#endif  // DCAM_EVAL_RANKING_H_
