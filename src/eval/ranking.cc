#include "eval/ranking.h"

#include <algorithm>
#include <numeric>

#include "util/check.h"

namespace dcam {
namespace eval {

std::vector<double> RankRow(const std::vector<double>& scores) {
  const size_t m = scores.size();
  DCAM_CHECK_GT(m, 0u);
  std::vector<size_t> order(m);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return scores[a] > scores[b];
  });
  std::vector<double> ranks(m, 0.0);
  size_t i = 0;
  while (i < m) {
    size_t j = i;
    while (j < m && scores[order[j]] == scores[order[i]]) ++j;
    // Entries [i, j) are tied: assign the average of ranks i+1..j.
    const double avg = (static_cast<double>(i + 1) + static_cast<double>(j)) / 2.0;
    for (size_t k = i; k < j; ++k) ranks[order[k]] = avg;
    i = j;
  }
  return ranks;
}

std::vector<double> AverageRanks(
    const std::vector<std::vector<double>>& scores) {
  DCAM_CHECK(!scores.empty());
  const size_t m = scores[0].size();
  std::vector<double> sum(m, 0.0);
  for (const auto& row : scores) {
    DCAM_CHECK_EQ(row.size(), m);
    const std::vector<double> ranks = RankRow(row);
    for (size_t k = 0; k < m; ++k) sum[k] += ranks[k];
  }
  for (double& s : sum) s /= static_cast<double>(scores.size());
  return sum;
}

std::vector<double> ColumnMeans(
    const std::vector<std::vector<double>>& scores) {
  DCAM_CHECK(!scores.empty());
  const size_t m = scores[0].size();
  std::vector<double> sum(m, 0.0);
  for (const auto& row : scores) {
    DCAM_CHECK_EQ(row.size(), m);
    for (size_t k = 0; k < m; ++k) sum[k] += row[k];
  }
  for (double& s : sum) s /= static_cast<double>(scores.size());
  return sum;
}

}  // namespace eval
}  // namespace dcam
