// Additional evaluation statistics beyond Section 5.1.2's two measures:
// ROC-AUC (the alternative the paper argues against for rare positives, kept
// so the comparison is reproducible), confusion-matrix summaries, and the
// Wilcoxon signed-rank test used throughout the TSC literature to decide
// whether two classifiers differ significantly across datasets.

#ifndef DCAM_EVAL_STATS_H_
#define DCAM_EVAL_STATS_H_

#include <cstdint>
#include <vector>

namespace dcam {
namespace eval {

/// Area under the ROC curve via the rank statistic (equivalent to the
/// probability a random positive outscores a random negative; ties count
/// half). Returns 0.5 when either class is empty.
double RocAuc(const std::vector<float>& scores, const std::vector<int>& labels);

/// Row-major confusion matrix C where C[actual][predicted] counts instances.
class ConfusionMatrix {
 public:
  explicit ConfusionMatrix(int num_classes);

  /// Builds from parallel prediction / label vectors.
  static ConfusionMatrix From(const std::vector<int>& preds,
                              const std::vector<int>& labels, int num_classes);

  void Add(int actual, int predicted, int64_t count = 1);

  int64_t at(int actual, int predicted) const;
  int num_classes() const { return num_classes_; }
  int64_t total() const;

  /// Trace / total.
  double Accuracy() const;
  /// Per-class precision: C[c][c] / column-sum(c). 0 when undefined.
  double Precision(int c) const;
  /// Per-class recall: C[c][c] / row-sum(c). 0 when undefined.
  double Recall(int c) const;
  /// Per-class F1 (harmonic mean of precision and recall).
  double F1(int c) const;
  /// Unweighted mean of per-class F1 scores.
  double MacroF1() const;

 private:
  int num_classes_;
  std::vector<int64_t> counts_;
};

/// Result of the two-sided Wilcoxon signed-rank test on paired samples.
struct WilcoxonResult {
  /// Smaller of the positive/negative rank sums.
  double w = 0.0;
  /// Number of non-zero differences actually ranked.
  int n = 0;
  /// Two-sided p-value from the normal approximation with tie and
  /// continuity corrections. Exact for n = 0 (p = 1).
  double p_value = 1.0;
  /// Mean difference a - b (positive: a scored higher on average).
  double mean_difference = 0.0;
};

/// Tests whether paired scores `a` and `b` (e.g. two classifiers' per-dataset
/// accuracies, as in Table 2) come from the same distribution.
WilcoxonResult WilcoxonSignedRank(const std::vector<double>& a,
                                  const std::vector<double>& b);

}  // namespace eval
}  // namespace dcam

#endif  // DCAM_EVAL_STATS_H_
