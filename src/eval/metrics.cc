#include "eval/metrics.h"

#include <algorithm>
#include <numeric>

#include "util/check.h"

namespace dcam {
namespace eval {

double Accuracy(const std::vector<int>& preds,
                const std::vector<int>& labels) {
  DCAM_CHECK_EQ(preds.size(), labels.size());
  DCAM_CHECK(!preds.empty());
  int64_t correct = 0;
  for (size_t i = 0; i < preds.size(); ++i) {
    if (preds[i] == labels[i]) ++correct;
  }
  return static_cast<double>(correct) / preds.size();
}

double PrAuc(const std::vector<float>& scores, const std::vector<int>& labels) {
  DCAM_CHECK_EQ(scores.size(), labels.size());
  DCAM_CHECK(!scores.empty());
  int64_t total_pos = 0;
  for (int l : labels) {
    DCAM_CHECK(l == 0 || l == 1);
    total_pos += l;
  }
  if (total_pos == 0) return 0.0;

  std::vector<size_t> order(scores.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return scores[a] > scores[b];
  });

  // Average precision with tie handling: advance through groups of equal
  // score, updating precision/recall once per group.
  double ap = 0.0;
  int64_t tp = 0, seen = 0;
  double prev_recall = 0.0;
  size_t i = 0;
  while (i < order.size()) {
    size_t j = i;
    int64_t group_pos = 0;
    while (j < order.size() && scores[order[j]] == scores[order[i]]) {
      group_pos += labels[order[j]];
      ++j;
    }
    tp += group_pos;
    seen += static_cast<int64_t>(j - i);
    const double precision = static_cast<double>(tp) / seen;
    const double recall = static_cast<double>(tp) / total_pos;
    ap += (recall - prev_recall) * precision;
    prev_recall = recall;
    i = j;
  }
  return ap;
}

double DrAcc(const Tensor& explanation, const Tensor& mask) {
  DCAM_CHECK(explanation.shape() == mask.shape())
      << ShapeToString(explanation.shape()) << " vs "
      << ShapeToString(mask.shape());
  std::vector<float> scores(explanation.size());
  std::vector<int> labels(mask.size());
  for (int64_t i = 0; i < explanation.size(); ++i) {
    scores[i] = explanation[i];
    labels[i] = mask[i] > 0.5f ? 1 : 0;
  }
  return PrAuc(scores, labels);
}

double RandomBaseline(const Tensor& mask) {
  DCAM_CHECK_GT(mask.size(), 0);
  double pos = 0.0;
  for (int64_t i = 0; i < mask.size(); ++i) pos += mask[i] > 0.5f ? 1.0 : 0.0;
  return pos / static_cast<double>(mask.size());
}

double HarmonicMean(double a, double b) {
  if (a + b <= 0.0) return 0.0;
  return 2.0 * a * b / (a + b);
}

}  // namespace eval
}  // namespace dcam
