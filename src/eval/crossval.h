// Stratified k-fold cross-validation over data::Dataset.
//
// The paper reports averages over 10 random 80/20 splits (Section 5.2);
// k-fold CV is the systematic alternative a downstream user will reach for
// when the dataset is too small for a held-out test set. Folds are
// stratified so each keeps the class balance, and the whole procedure is
// deterministic given the seed.

#ifndef DCAM_EVAL_CROSSVAL_H_
#define DCAM_EVAL_CROSSVAL_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "data/series.h"

namespace dcam {
namespace eval {

/// Index sets of one fold: `test` is the held-out fold, `train` the rest.
struct FoldIndices {
  std::vector<int64_t> train;
  std::vector<int64_t> test;
};

/// Splits [0, dataset.size()) into `folds` stratified folds. Every index
/// appears in exactly one test set. Requires 2 <= folds <= size and at least
/// one instance of every class.
std::vector<FoldIndices> StratifiedKFold(const data::Dataset& dataset,
                                         int folds, uint64_t seed);

struct CrossValidationResult {
  /// Per-fold scores as returned by the evaluation callback.
  std::vector<double> fold_scores;
  double mean = 0.0;
  double stddev = 0.0;
};

/// Runs `evaluate(train, test)` for every fold and aggregates the scores.
/// The callback typically trains a fresh model on `train` and returns its
/// accuracy on `test`.
CrossValidationResult CrossValidate(
    const data::Dataset& dataset, int folds, uint64_t seed,
    const std::function<double(const data::Dataset& train,
                               const data::Dataset& test)>& evaluate);

}  // namespace eval
}  // namespace dcam

#endif  // DCAM_EVAL_CROSSVAL_H_
