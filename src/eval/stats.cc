#include "eval/stats.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/check.h"

namespace dcam {
namespace eval {

double RocAuc(const std::vector<float>& scores,
              const std::vector<int>& labels) {
  DCAM_CHECK_EQ(scores.size(), labels.size());
  const size_t n = scores.size();
  int64_t pos = 0;
  for (int y : labels) {
    DCAM_CHECK(y == 0 || y == 1);
    pos += y;
  }
  const int64_t neg = static_cast<int64_t>(n) - pos;
  if (pos == 0 || neg == 0) return 0.5;

  // Midranks of the scores.
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](size_t a, size_t b) { return scores[a] < scores[b]; });
  std::vector<double> rank(n);
  size_t i = 0;
  while (i < n) {
    size_t j = i;
    while (j + 1 < n && scores[order[j + 1]] == scores[order[i]]) ++j;
    const double mid = 0.5 * static_cast<double>(i + j) + 1.0;
    for (size_t t = i; t <= j; ++t) rank[order[t]] = mid;
    i = j + 1;
  }
  double rank_sum_pos = 0.0;
  for (size_t t = 0; t < n; ++t) {
    if (labels[t] == 1) rank_sum_pos += rank[t];
  }
  const double auc =
      (rank_sum_pos - static_cast<double>(pos) * (pos + 1) / 2.0) /
      (static_cast<double>(pos) * static_cast<double>(neg));
  return auc;
}

ConfusionMatrix::ConfusionMatrix(int num_classes)
    : num_classes_(num_classes),
      counts_(static_cast<size_t>(num_classes) * num_classes, 0) {
  DCAM_CHECK_GE(num_classes, 2);
}

ConfusionMatrix ConfusionMatrix::From(const std::vector<int>& preds,
                                      const std::vector<int>& labels,
                                      int num_classes) {
  DCAM_CHECK_EQ(preds.size(), labels.size());
  ConfusionMatrix m(num_classes);
  for (size_t i = 0; i < preds.size(); ++i) {
    m.Add(labels[i], preds[i]);
  }
  return m;
}

void ConfusionMatrix::Add(int actual, int predicted, int64_t count) {
  DCAM_CHECK_GE(actual, 0);
  DCAM_CHECK_LT(actual, num_classes_);
  DCAM_CHECK_GE(predicted, 0);
  DCAM_CHECK_LT(predicted, num_classes_);
  counts_[static_cast<size_t>(actual) * num_classes_ + predicted] += count;
}

int64_t ConfusionMatrix::at(int actual, int predicted) const {
  DCAM_CHECK_GE(actual, 0);
  DCAM_CHECK_LT(actual, num_classes_);
  DCAM_CHECK_GE(predicted, 0);
  DCAM_CHECK_LT(predicted, num_classes_);
  return counts_[static_cast<size_t>(actual) * num_classes_ + predicted];
}

int64_t ConfusionMatrix::total() const {
  return std::accumulate(counts_.begin(), counts_.end(), int64_t{0});
}

double ConfusionMatrix::Accuracy() const {
  const int64_t n = total();
  if (n == 0) return 0.0;
  int64_t diag = 0;
  for (int c = 0; c < num_classes_; ++c) diag += at(c, c);
  return static_cast<double>(diag) / static_cast<double>(n);
}

double ConfusionMatrix::Precision(int c) const {
  int64_t col = 0;
  for (int a = 0; a < num_classes_; ++a) col += at(a, c);
  return col == 0 ? 0.0 : static_cast<double>(at(c, c)) / col;
}

double ConfusionMatrix::Recall(int c) const {
  int64_t row = 0;
  for (int p = 0; p < num_classes_; ++p) row += at(c, p);
  return row == 0 ? 0.0 : static_cast<double>(at(c, c)) / row;
}

double ConfusionMatrix::F1(int c) const {
  const double p = Precision(c);
  const double r = Recall(c);
  return p + r == 0.0 ? 0.0 : 2.0 * p * r / (p + r);
}

double ConfusionMatrix::MacroF1() const {
  double s = 0.0;
  for (int c = 0; c < num_classes_; ++c) s += F1(c);
  return s / num_classes_;
}

WilcoxonResult WilcoxonSignedRank(const std::vector<double>& a,
                                  const std::vector<double>& b) {
  DCAM_CHECK_EQ(a.size(), b.size());
  WilcoxonResult out;

  std::vector<double> diffs;
  double mean_diff = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    mean_diff += d;
    if (d != 0.0) diffs.push_back(d);
  }
  out.mean_difference = a.empty() ? 0.0 : mean_diff / a.size();
  out.n = static_cast<int>(diffs.size());
  if (out.n == 0) return out;  // all pairs tied: p = 1

  // Rank |d| with midranks; accumulate the tie correction term.
  std::vector<size_t> order(diffs.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](size_t x, size_t y) {
    return std::fabs(diffs[x]) < std::fabs(diffs[y]);
  });
  std::vector<double> rank(diffs.size());
  double tie_term = 0.0;
  size_t i = 0;
  while (i < order.size()) {
    size_t j = i;
    while (j + 1 < order.size() &&
           std::fabs(diffs[order[j + 1]]) == std::fabs(diffs[order[i]])) {
      ++j;
    }
    const double mid = 0.5 * static_cast<double>(i + j) + 1.0;
    const double t = static_cast<double>(j - i + 1);
    tie_term += t * t * t - t;
    for (size_t k = i; k <= j; ++k) rank[order[k]] = mid;
    i = j + 1;
  }

  double w_pos = 0.0;
  double w_neg = 0.0;
  for (size_t k = 0; k < diffs.size(); ++k) {
    if (diffs[k] > 0.0) {
      w_pos += rank[k];
    } else {
      w_neg += rank[k];
    }
  }
  out.w = std::min(w_pos, w_neg);

  const double n = static_cast<double>(out.n);
  const double mean = n * (n + 1.0) / 4.0;
  const double var = n * (n + 1.0) * (2.0 * n + 1.0) / 24.0 - tie_term / 48.0;
  if (var <= 0.0) {
    out.p_value = 1.0;
    return out;
  }
  // Continuity-corrected z; two-sided p from the normal tail.
  const double z = (std::fabs(out.w - mean) - 0.5) / std::sqrt(var);
  out.p_value = std::erfc(std::max(z, 0.0) / std::sqrt(2.0));
  if (out.p_value > 1.0) out.p_value = 1.0;
  return out;
}

}  // namespace eval
}  // namespace dcam
