#include "eval/sweep.h"

#include <memory>

#include "eval/metrics.h"
#include "models/mtex.h"
#include "util/stopwatch.h"

namespace dcam {
namespace eval {

std::string PaperMethodFor(const models::Model& model, const Tensor& series) {
  if (dynamic_cast<const models::MtexCnn*>(&model) != nullptr) {
    return "gradcam";
  }
  if (explain::MakeExplainer("dcam")->Supports(model, series)) return "dcam";
  return "cam";
}

MethodScore ScoreMethod(models::Model* model, const std::string& method,
                        const data::Dataset& test,
                        const ExplainSweepOptions& options) {
  const std::unique_ptr<explain::Explainer> explainer =
      explain::MakeExplainer(method);
  return ScoreMethod(model, explainer.get(), test, options);
}

MethodScore ScoreMethod(models::Model* model, explain::Explainer* explainer,
                        const data::Dataset& test,
                        const ExplainSweepOptions& options) {
  DCAM_CHECK(model != nullptr);
  DCAM_CHECK(explainer != nullptr);
  DCAM_CHECK(!test.mask.empty())
      << "ScoreMethod needs a dataset with ground-truth masks (Dr-acc is "
         "undefined without them)";
  MethodScore score;
  score.method = explainer->name();
  double dr = 0.0, ng = 0.0;
  for (int64_t i = 0;
       i < test.size() && score.instances < options.max_instances; ++i) {
    if (test.y[i] != options.target_class) continue;
    explain::ExplainOptions opts = options.base;
    if (options.per_instance_seed) {
      opts.dcam.seed = options.seed_base + static_cast<uint64_t>(i);
      opts.adaptive.seed = opts.dcam.seed;
      opts.smoothgrad.seed = opts.dcam.seed;
    }
    const Tensor series = test.Instance(i);
    Stopwatch watch;
    const explain::ExplanationResult res =
        explainer->Explain(model, series, options.target_class, opts);
    score.seconds += watch.ElapsedSeconds();
    dr += DrAcc(res.map, test.InstanceMask(i));
    ng += res.CorrectRatio();
    ++score.instances;
  }
  if (score.instances > 0) {
    score.mean_dr_acc = dr / score.instances;
    score.mean_correct_ratio = ng / score.instances;
  }
  return score;
}

std::vector<MethodScore> SweepMethods(models::Model* model,
                                      const std::vector<std::string>& methods,
                                      const data::Dataset& test,
                                      const ExplainSweepOptions& options) {
  std::vector<MethodScore> scores;
  scores.reserve(methods.size());
  for (const std::string& method : methods) {
    scores.push_back(ScoreMethod(model, method, test, options));
  }
  return scores;
}

double MeanRandomBaseline(const data::Dataset& test,
                          const ExplainSweepOptions& options) {
  DCAM_CHECK(!test.mask.empty());
  double sum = 0.0;
  int count = 0;
  for (int64_t i = 0; i < test.size() && count < options.max_instances; ++i) {
    if (test.y[i] != options.target_class) continue;
    sum += RandomBaseline(test.InstanceMask(i));
    ++count;
  }
  return count > 0 ? sum / count : 0.0;
}

}  // namespace eval
}  // namespace dcam
