// Registry-driven explanation-method sweeps.
//
// The Table 3 / Figure 9 harnesses all repeat the same loop — pick the
// method that fits the model (dCAM for d-architectures, MTEX-grad for MTEX,
// broadcast CAM otherwise), explain a few injected-class test instances,
// average Dr-acc — with the dispatch hand-rolled at every site. This header
// centralizes that loop on top of the explain:: registry, so a harness names
// methods ("dcam", "occlusion", ...) instead of plumbing signatures, and new
// registry methods join the sweeps for free. The per-method rows feed
// eval::AverageRanks (ranking.h) for the tables' "Rank" summary.

#ifndef DCAM_EVAL_SWEEP_H_
#define DCAM_EVAL_SWEEP_H_

#include <cstdint>
#include <string>
#include <vector>

#include "data/series.h"
#include "explain/explainer.h"
#include "models/model.h"

namespace dcam {
namespace eval {

/// The registry method the paper's tables score `model` with: "dcam" for
/// cube-input d-architectures, "gradcam" for MTEX, "cam" (univariate CAM
/// broadcast, starred in Table 3) otherwise. `series` supplies the (D, n)
/// probe shape for the cube check.
std::string PaperMethodFor(const models::Model& model, const Tensor& series);

struct ExplainSweepOptions {
  /// Instances of `target_class` explained (in dataset order).
  int max_instances = 8;
  /// The class explained and filtered on — the injected class of the
  /// Type 1 / Type 2 synthetic datasets.
  int target_class = 1;
  /// Method options; seeds may be overridden per instance (below).
  explain::ExplainOptions base;
  /// When true, the instance at dataset index i draws its dCAM / adaptive /
  /// SmoothGrad seed as seed_base + i — the per-instance seeding the
  /// table/figure harnesses use so every instance gets an independent
  /// permutation sample.
  bool per_instance_seed = false;
  uint64_t seed_base = 0;
};

struct MethodScore {
  std::string method;
  /// Dr-acc (PR-AUC against the injected ground truth) averaged over the
  /// explained instances.
  double mean_dr_acc = 0.0;
  /// n_g/k averaged over the explained instances (dCAM family; 0 otherwise).
  double mean_correct_ratio = 0.0;
  /// Wall-clock spent inside Explain calls.
  double seconds = 0.0;
  int instances = 0;
};

/// Explains up to max_instances `target_class` test instances with one
/// registry method and scores them against the dataset's ground-truth
/// masks. Requires test.mask. One Explainer instance serves the whole loop,
/// so per-model scratch (the dCAM engine) persists across instances.
MethodScore ScoreMethod(models::Model* model, const std::string& method,
                        const data::Dataset& test,
                        const ExplainSweepOptions& options);

/// As above but on a caller-held Explainer, so its per-model scratch (the
/// dCAM engine) also persists across ScoreMethod calls — e.g. the k sweep
/// of bench_fig10, which scores the same model many times.
MethodScore ScoreMethod(models::Model* model, explain::Explainer* explainer,
                        const data::Dataset& test,
                        const ExplainSweepOptions& options);

/// ScoreMethod for several methods over the same instances — the rows of an
/// explanation-quality table.
std::vector<MethodScore> SweepMethods(models::Model* model,
                                      const std::vector<std::string>& methods,
                                      const data::Dataset& test,
                                      const ExplainSweepOptions& options);

/// Mean Dr-acc of the paper's random-explainer baseline over the same
/// instances ScoreMethod explains (the positive rate of each mask).
double MeanRandomBaseline(const data::Dataset& test,
                          const ExplainSweepOptions& options);

}  // namespace eval
}  // namespace dcam

#endif  // DCAM_EVAL_SWEEP_H_
