#include "eval/crossval.h"

#include <algorithm>
#include <cmath>

#include "util/rng.h"

namespace dcam {
namespace eval {

std::vector<FoldIndices> StratifiedKFold(const data::Dataset& dataset,
                                         int folds, uint64_t seed) {
  DCAM_CHECK_GE(folds, 2);
  DCAM_CHECK_LE(folds, dataset.size());
  DCAM_CHECK_GE(dataset.num_classes, 2);

  // Shuffle indices within each class, then deal them round-robin into
  // folds so every fold keeps the class proportions.
  Rng rng(seed);
  std::vector<std::vector<int64_t>> by_class(
      static_cast<size_t>(dataset.num_classes));
  for (int64_t i = 0; i < dataset.size(); ++i) {
    const int y = dataset.y[static_cast<size_t>(i)];
    DCAM_CHECK_GE(y, 0);
    DCAM_CHECK_LT(y, dataset.num_classes);
    by_class[static_cast<size_t>(y)].push_back(i);
  }

  std::vector<std::vector<int64_t>> fold_members(static_cast<size_t>(folds));
  for (auto& members : by_class) {
    DCAM_CHECK(!members.empty()) << "a class has no instances";
    rng.Shuffle(&members);
    for (size_t j = 0; j < members.size(); ++j) {
      fold_members[j % static_cast<size_t>(folds)].push_back(members[j]);
    }
  }

  std::vector<FoldIndices> out(static_cast<size_t>(folds));
  for (int f = 0; f < folds; ++f) {
    auto& fold = out[static_cast<size_t>(f)];
    fold.test = fold_members[static_cast<size_t>(f)];
    std::sort(fold.test.begin(), fold.test.end());
    for (int g = 0; g < folds; ++g) {
      if (g == f) continue;
      fold.train.insert(fold.train.end(),
                        fold_members[static_cast<size_t>(g)].begin(),
                        fold_members[static_cast<size_t>(g)].end());
    }
    std::sort(fold.train.begin(), fold.train.end());
  }
  return out;
}

CrossValidationResult CrossValidate(
    const data::Dataset& dataset, int folds, uint64_t seed,
    const std::function<double(const data::Dataset& train,
                               const data::Dataset& test)>& evaluate) {
  DCAM_CHECK(evaluate != nullptr);
  const std::vector<FoldIndices> plan = StratifiedKFold(dataset, folds, seed);

  CrossValidationResult out;
  for (const FoldIndices& fold : plan) {
    const data::Dataset train = dataset.Subset(fold.train);
    const data::Dataset test = dataset.Subset(fold.test);
    out.fold_scores.push_back(evaluate(train, test));
  }
  double sum = 0.0;
  for (double s : out.fold_scores) sum += s;
  out.mean = sum / static_cast<double>(out.fold_scores.size());
  double sq = 0.0;
  for (double s : out.fold_scores) sq += (s - out.mean) * (s - out.mean);
  out.stddev = std::sqrt(sq / static_cast<double>(out.fold_scores.size()));
  return out;
}

}  // namespace eval
}  // namespace dcam
