// Evaluation measures of Section 5.1.2:
//   C-acc  — classification accuracy on held-out instances.
//   Dr-acc — discriminant-features accuracy: the PR-AUC of an explanation
//            heat map scored against the 0/1 ground-truth injection mask
//            (PR-AUC rather than ROC-AUC because the positives are rare).

#ifndef DCAM_EVAL_METRICS_H_
#define DCAM_EVAL_METRICS_H_

#include <vector>

#include "tensor/tensor.h"

namespace dcam {
namespace eval {

/// Fraction of positions where preds[i] == labels[i].
double Accuracy(const std::vector<int>& preds, const std::vector<int>& labels);

/// Area under the precision-recall curve computed as average precision:
/// AP = sum_i (R_i - R_{i-1}) * P_i over the descending-score sweep.
/// `labels` are 0/1. Returns 0 if there are no positives.
double PrAuc(const std::vector<float>& scores, const std::vector<int>& labels);

/// Dr-acc: PR-AUC of a (D, n) explanation map against a (D, n) 0/1 mask.
double DrAcc(const Tensor& explanation, const Tensor& mask);

/// Expected Dr-acc of a random explanation = positive rate of the mask
/// (the paper's "Random" column in Table 3).
double RandomBaseline(const Tensor& mask);

/// Harmonic mean, the paper's F(Type1, Type2) combination (Figure 9):
/// F = 2ab / (a + b); 0 when a + b == 0.
double HarmonicMean(double a, double b);

}  // namespace eval
}  // namespace dcam

#endif  // DCAM_EVAL_METRICS_H_
