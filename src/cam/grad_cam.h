// grad-CAM (Selvaraju et al. 2017): activation maps weighted by the mean of
// the gradient of the class score w.r.t. each map, followed by ReLU. Used by
// the MTEX-grad baseline (models/mtex.h wires it into both MTEX-CNN blocks);
// exposed here as a standalone helper over any (activation, gradient) pair.

#ifndef DCAM_CAM_GRAD_CAM_H_
#define DCAM_CAM_GRAD_CAM_H_

#include "tensor/tensor.h"

namespace dcam {
namespace cam {

/// activation and gradient both (1, nf, H, W) -> grad-CAM map (H, W):
///   alpha_m = mean_{h,w} grad[m];   map = ReLU(sum_m alpha_m * act[m]).
Tensor GradCamFromActivation(const Tensor& activation, const Tensor& gradient);

}  // namespace cam
}  // namespace dcam

#endif  // DCAM_CAM_GRAD_CAM_H_
