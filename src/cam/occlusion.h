// Occlusion-based explanation baseline: slide a masking window over every
// (dimension, time-window) cell, re-run the model, and record how much the
// target class logit drops. A model-agnostic perturbation method (Zeiler &
// Fergus) that works for ANY classifier — including the recurrent baselines
// that CAM cannot explain — at the cost of one forward pass per occluded
// window.
//
// The per-point map averages the logit drops of every window covering the
// point, so overlapping strides yield smooth maps. Positive values mark
// evidence FOR the class (occluding it hurts the logit).

#ifndef DCAM_CAM_OCCLUSION_H_
#define DCAM_CAM_OCCLUSION_H_

#include <cstdint>

#include "models/model.h"
#include "tensor/tensor.h"

namespace dcam {
namespace cam {

struct OcclusionOptions {
  /// Window length in time steps.
  int64_t window = 8;
  /// Stride between window starts; <= window gives full coverage.
  int64_t stride = 4;
  /// What the occluded window is replaced with.
  enum class Fill {
    kZero,           // literal zeros
    kDimensionMean,  // the mean of the occluded dimension
  };
  Fill fill = Fill::kDimensionMean;
  /// Number of occluded variants evaluated per forward pass.
  int batch = 32;
};

/// Returns the (D, n) occlusion map of `series` for `class_idx`.
Tensor OcclusionMap(models::Model* model, const Tensor& series, int class_idx,
                    const OcclusionOptions& options = {});

/// Dimension-level importance: logit drop when each whole dimension is
/// replaced by its mean, shape (D). One forward pass per dimension — the
/// cheap first pass before a windowed OcclusionMap, and a direct answer to
/// the paper's "which sensor matters" question (Figure 13(c)) for models
/// without a CAM surface.
Tensor DimensionOcclusion(models::Model* model, const Tensor& series,
                          int class_idx);

}  // namespace cam
}  // namespace dcam

#endif  // DCAM_CAM_OCCLUSION_H_
