#include "cam/saliency.h"

#include <cmath>

#include "util/rng.h"

namespace dcam {
namespace cam {
namespace {

// Folds the gradient w.r.t. the model's prepared input back to the raw
// (D, n) layout. The layout is recognized from the prepared shape, which is
// unambiguous across the model zoo:
//   (1, D, n)     recurrent      identity
//   (1, D, 1, n)  standard conv  squeeze axis 2
//   (1, 1, D, n)  c-variants     squeeze axis 1
//   (1, D, D, n)  d-variants     raw[j][t] = sum_{(p+r)%D==j} cube[p][r][t]
Tensor FoldToRaw(const Tensor& grad_prepared, int64_t dims, int64_t length) {
  if (grad_prepared.rank() == 3) {
    DCAM_CHECK_EQ(grad_prepared.dim(1), dims);
    DCAM_CHECK_EQ(grad_prepared.dim(2), length);
    return grad_prepared.Reshape({dims, length}).Clone();
  }
  DCAM_CHECK_EQ(grad_prepared.rank(), 4);
  DCAM_CHECK_EQ(grad_prepared.dim(0), 1);
  DCAM_CHECK_EQ(grad_prepared.dim(3), length);
  const int64_t c = grad_prepared.dim(1);
  const int64_t h = grad_prepared.dim(2);
  Tensor raw({dims, length});
  if (c == dims && h == 1) {
    for (int64_t j = 0; j < dims; ++j) {
      for (int64_t t = 0; t < length; ++t) {
        raw.at(j, t) = grad_prepared.at(0, j, 0, t);
      }
    }
    return raw;
  }
  if (c == 1 && h == dims) {
    for (int64_t j = 0; j < dims; ++j) {
      for (int64_t t = 0; t < length; ++t) {
        raw.at(j, t) = grad_prepared.at(0, 0, j, t);
      }
    }
    return raw;
  }
  DCAM_CHECK(c == dims && h == dims)
      << "unrecognized prepared-input shape " <<
      ShapeToString(grad_prepared.shape());
  for (int64_t p = 0; p < dims; ++p) {
    for (int64_t r = 0; r < dims; ++r) {
      const int64_t j = (p + r) % dims;
      for (int64_t t = 0; t < length; ++t) {
        raw.at(j, t) += grad_prepared.at(0, p, r, t);
      }
    }
  }
  return raw;
}

}  // namespace

Tensor InputGradient(models::Model* model, const Tensor& series,
                     int class_idx) {
  DCAM_CHECK(model != nullptr);
  DCAM_CHECK_EQ(series.rank(), 2);
  DCAM_CHECK_GE(class_idx, 0);
  DCAM_CHECK_LT(class_idx, model->num_classes());
  const int64_t d = series.dim(0);
  const int64_t n = series.dim(1);

  const Tensor batch = series.Reshape({1, d, n});
  const Tensor prepared = model->PrepareInput(batch);
  const Tensor logits = model->Forward(prepared, /*training=*/false);
  DCAM_CHECK_EQ(logits.dim(0), 1);

  Tensor grad_logits(logits.shape());
  grad_logits.at(0, class_idx) = 1.0f;
  for (nn::Parameter* p : model->Params()) p->ZeroGrad();
  const Tensor grad_prepared = model->Backward(grad_logits);
  // Parameter gradients accumulated by this probe are meaningless to the
  // caller; clear them so an interleaved training step is not polluted.
  for (nn::Parameter* p : model->Params()) p->ZeroGrad();
  return FoldToRaw(grad_prepared, d, n);
}

Tensor GradientSaliency(models::Model* model, const Tensor& series,
                        int class_idx) {
  Tensor g = InputGradient(model, series, class_idx);
  for (int64_t i = 0; i < g.size(); ++i) g[i] = std::fabs(g[i]);
  return g;
}

Tensor GradientTimesInput(models::Model* model, const Tensor& series,
                          int class_idx) {
  Tensor g = InputGradient(model, series, class_idx);
  for (int64_t i = 0; i < g.size(); ++i) g[i] *= series[i];
  return g;
}

Tensor SmoothGrad(models::Model* model, const Tensor& series, int class_idx,
                  const SmoothGradOptions& options) {
  DCAM_CHECK_GE(options.samples, 1);
  DCAM_CHECK_GE(options.noise_fraction, 0.0f);
  const float range = series.Max() - series.Min();
  const float stddev = options.noise_fraction * (range > 0.0f ? range : 1.0f);
  Rng rng(options.seed);

  Tensor acc(series.shape());
  for (int s = 0; s < options.samples; ++s) {
    Tensor noisy = series.Clone();
    for (int64_t i = 0; i < noisy.size(); ++i) {
      noisy[i] += static_cast<float>(rng.Normal(0.0, stddev));
    }
    const Tensor g = InputGradient(model, noisy, class_idx);
    for (int64_t i = 0; i < acc.size(); ++i) acc[i] += std::fabs(g[i]);
  }
  const float inv = 1.0f / static_cast<float>(options.samples);
  for (int64_t i = 0; i < acc.size(); ++i) acc[i] *= inv;
  return acc;
}

Tensor IntegratedGradients(models::Model* model, const Tensor& series,
                           int class_idx,
                           const IntegratedGradientsOptions& options) {
  DCAM_CHECK_GE(options.steps, 1);
  Tensor baseline = options.baseline;
  if (baseline.empty()) {
    baseline = Tensor(series.shape());  // zeros
  }
  DCAM_CHECK(baseline.shape() == series.shape());

  Tensor acc(series.shape());
  for (int s = 0; s < options.steps; ++s) {
    // Midpoint rule: alpha at the center of each sub-interval.
    const float alpha =
        (static_cast<float>(s) + 0.5f) / static_cast<float>(options.steps);
    Tensor point(series.shape());
    for (int64_t i = 0; i < point.size(); ++i) {
      point[i] = baseline[i] + alpha * (series[i] - baseline[i]);
    }
    const Tensor g = InputGradient(model, point, class_idx);
    for (int64_t i = 0; i < acc.size(); ++i) acc[i] += g[i];
  }
  const float inv = 1.0f / static_cast<float>(options.steps);
  for (int64_t i = 0; i < acc.size(); ++i) {
    acc[i] *= inv * (series[i] - baseline[i]);
  }
  return acc;
}

}  // namespace cam
}  // namespace dcam
