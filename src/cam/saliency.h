// Gradient-based saliency baselines: vanilla gradient, gradient x input, and
// SmoothGrad.
//
// The saliency benchmark the paper cites [25] (Ismail et al., NeurIPS 2020)
// evaluates exactly this family on multivariate series; providing them here
// lets dCAM be compared against gradient explanations on equal footing
// (bench_ablation prints the Dr-acc of each).
//
// All maps are (D, n) over the RAW series: the gradient w.r.t. the model's
// prepared input is folded back through the input reorganization
// (models::PrepareConvInput). For d-variants each raw point T[j][t] appears
// in D cells of the C(T) cube (cube[p][r][t] with (p+r) % D == j), so its
// raw gradient is the sum over those cells.

#ifndef DCAM_CAM_SALIENCY_H_
#define DCAM_CAM_SALIENCY_H_

#include <cstdint>

#include "models/model.h"
#include "tensor/tensor.h"

namespace dcam {
namespace cam {

/// d logit[class_idx] / d T — signed gradient of the class logit w.r.t. the
/// raw (D, n) series, folded back through the model's input layout.
Tensor InputGradient(models::Model* model, const Tensor& series,
                     int class_idx);

/// |d logit / d T| — the classic saliency map (Simonyan et al.).
Tensor GradientSaliency(models::Model* model, const Tensor& series,
                        int class_idx);

/// grad * input — sharper attribution for inputs whose scale carries
/// meaning.
Tensor GradientTimesInput(models::Model* model, const Tensor& series,
                          int class_idx);

struct SmoothGradOptions {
  /// Number of noisy replicas averaged.
  int samples = 25;
  /// Noise scale as a fraction of the series' value range.
  float noise_fraction = 0.1f;
  uint64_t seed = 77;
};

/// SmoothGrad (Smilkov et al.): mean absolute gradient over Gaussian-noised
/// copies of the series.
Tensor SmoothGrad(models::Model* model, const Tensor& series, int class_idx,
                  const SmoothGradOptions& options = {});

struct IntegratedGradientsOptions {
  /// Steps of the Riemann midpoint sum along the baseline->input path.
  int steps = 32;
  /// Baseline series; empty means the all-zeros series (after
  /// z-normalization, the per-dimension mean).
  Tensor baseline;
};

/// Integrated gradients (Sundararajan et al.): (x - x0) * mean over the
/// straight-line path of d logit / d x. Satisfies completeness: the map sums
/// to logit(x) - logit(x0) up to discretization error.
Tensor IntegratedGradients(models::Model* model, const Tensor& series,
                           int class_idx,
                           const IntegratedGradientsOptions& options = {});

}  // namespace cam
}  // namespace dcam

#endif  // DCAM_CAM_SALIENCY_H_
