#include "cam/occlusion.h"

#include <algorithm>
#include <vector>

#include "util/parallel.h"

namespace dcam {
namespace cam {

Tensor OcclusionMap(models::Model* model, const Tensor& series, int class_idx,
                    const OcclusionOptions& options) {
  DCAM_CHECK(model != nullptr);
  DCAM_CHECK_EQ(series.rank(), 2);
  DCAM_CHECK_GE(class_idx, 0);
  DCAM_CHECK_LT(class_idx, model->num_classes());
  DCAM_CHECK_GE(options.window, 1);
  DCAM_CHECK_GE(options.stride, 1);
  DCAM_CHECK_GE(options.batch, 1);

  const int64_t d = series.dim(0);
  const int64_t n = series.dim(1);
  const int64_t window = std::min(options.window, n);

  // Baseline logit of the unmodified series.
  const Tensor one = series.Reshape({1, d, n});
  const Tensor base_logits =
      model->Forward(model->PrepareInput(one), /*training=*/false);
  const float base = base_logits.at(0, class_idx);

  // Per-dimension fill values.
  std::vector<float> fill(static_cast<size_t>(d), 0.0f);
  if (options.fill == OcclusionOptions::Fill::kDimensionMean) {
    for (int64_t j = 0; j < d; ++j) {
      double s = 0.0;
      for (int64_t t = 0; t < n; ++t) s += series.at(j, t);
      fill[static_cast<size_t>(j)] = static_cast<float>(s / n);
    }
  }

  // Enumerate (dimension, start) cells.
  std::vector<int64_t> starts;
  for (int64_t s = 0; s + window <= n; s += options.stride) starts.push_back(s);
  if (starts.empty() || starts.back() + window < n) {
    starts.push_back(n - window);  // cover the tail
  }

  struct Cell {
    int64_t dim;
    int64_t start;
  };
  std::vector<Cell> cells;
  cells.reserve(static_cast<size_t>(d) * starts.size());
  for (int64_t j = 0; j < d; ++j) {
    for (int64_t s : starts) cells.push_back({j, s});
  }

  Tensor drop_sum({d, n});
  Tensor cover({d, n});

  // Full-size batch tensor allocated once and reused across chunks (plus one
  // tail tensor for the final partial chunk); the occluded variants are
  // written in parallel, mirroring the batched dCAM engine's scratch policy.
  Tensor batch_full, batch_tail;
  for (size_t begin = 0; begin < cells.size();
       begin += static_cast<size_t>(options.batch)) {
    const size_t end =
        std::min(cells.size(), begin + static_cast<size_t>(options.batch));
    const int64_t b = static_cast<int64_t>(end - begin);

    Tensor& batch = *EnsureTensorShape(
        b == options.batch ? &batch_full : &batch_tail, {b, d, n});
    float* batch_data = batch.data();
    ParallelFor(0, b, [&](int64_t i) {
      float* instance = batch_data + i * d * n;
      std::copy(series.data(), series.data() + d * n, instance);
      const Cell& cell = cells[begin + static_cast<size_t>(i)];
      float* row = instance + cell.dim * n;
      for (int64_t t = cell.start; t < cell.start + window; ++t) {
        row[t] = fill[static_cast<size_t>(cell.dim)];
      }
    });
    const Tensor logits =
        model->Forward(model->PrepareInput(batch), /*training=*/false);
    for (int64_t i = 0; i < b; ++i) {
      const Cell& cell = cells[begin + static_cast<size_t>(i)];
      const float drop = base - logits.at(i, class_idx);
      for (int64_t t = cell.start; t < cell.start + window; ++t) {
        drop_sum.at(cell.dim, t) += drop;
        cover.at(cell.dim, t) += 1.0f;
      }
    }
  }

  for (int64_t i = 0; i < drop_sum.size(); ++i) {
    drop_sum[i] = cover[i] > 0.0f ? drop_sum[i] / cover[i] : 0.0f;
  }
  return drop_sum;
}

Tensor DimensionOcclusion(models::Model* model, const Tensor& series,
                          int class_idx) {
  DCAM_CHECK(model != nullptr);
  DCAM_CHECK_EQ(series.rank(), 2);
  DCAM_CHECK_GE(class_idx, 0);
  DCAM_CHECK_LT(class_idx, model->num_classes());
  const int64_t d = series.dim(0);
  const int64_t n = series.dim(1);

  const Tensor one = series.Reshape({1, d, n});
  const float base =
      model->Forward(model->PrepareInput(one), /*training=*/false)
          .at(0, class_idx);

  // One batch holding all D single-dimension-ablated variants.
  Tensor batch({d, d, n});
  for (int64_t v = 0; v < d; ++v) {
    std::copy(series.data(), series.data() + d * n, batch.data() + v * d * n);
    double mean = 0.0;
    for (int64_t t = 0; t < n; ++t) mean += series.at(v, t);
    mean /= static_cast<double>(n);
    float* row = batch.data() + v * d * n + v * n;
    for (int64_t t = 0; t < n; ++t) row[t] = static_cast<float>(mean);
  }
  const Tensor logits =
      model->Forward(model->PrepareInput(batch), /*training=*/false);
  Tensor drops({d});
  for (int64_t v = 0; v < d; ++v) {
    drops[v] = base - logits.at(v, class_idx);
  }
  return drops;
}

}  // namespace cam
}  // namespace dcam
