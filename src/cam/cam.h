// Class Activation Map (Zhou et al. 2016) for GAP-headed models, as applied
// to data series (Section 2.2 of the paper):
//
//   CAM_{C_j, i}(T) = sum_m w_m^{C_j} * A_{m,i}(T)
//
// where A is the last convolutional activation and w the dense weights from
// GAP features to the class-j logit. For the standard CNN the map is
// univariate (H = 1); for c-variants it is per-dimension (H = D, "cCAM");
// for d-variants rows index the C(T) cube combinations and must be
// post-processed by core/dcam.

#ifndef DCAM_CAM_CAM_H_
#define DCAM_CAM_CAM_H_

#include "models/model.h"
#include "tensor/tensor.h"

namespace dcam {
namespace cam {

/// Weighted sum of activation maps: activation (B, nf, H, W) and the dense
/// head's weight row of `class_idx` -> (B, H, W).
Tensor CamFromActivation(const Tensor& activation, const nn::Dense& head,
                         int class_idx);

/// Batched in-place variant: computes the CAM of every instance of a whole
/// batch in one pass into a preallocated (B, H, W) tensor, with a per-
/// instance target class (class_idx.size() == B). Instances are independent
/// and processed with ParallelFor; per-instance values are bit-identical to
/// CamFromActivation.
void CamFromActivationInto(const Tensor& activation, const nn::Dense& head,
                           const std::vector<int>& class_idx, Tensor* out);

/// Single-class overload of the batched variant.
void CamFromActivationInto(const Tensor& activation, const nn::Dense& head,
                           int class_idx, Tensor* out);

/// Runs `model` on one raw series (D, n) in eval mode and returns the CAM of
/// `class_idx`, shape (H, W): (1, n) for standard models, (D, n) for
/// c-variants, (D, n) over cube rows for d-variants.
Tensor ComputeCam(models::GapModel* model, const Tensor& series,
                  int class_idx);

/// Broadcasts a (1, n) univariate CAM to (D, n) (how the paper scores the
/// Dr-acc of univariate-CAM models, marked with a star in Table 3); returns
/// the input unchanged if it already has D rows.
Tensor BroadcastCam(const Tensor& cam, int dims);

}  // namespace cam
}  // namespace dcam

#endif  // DCAM_CAM_CAM_H_
