#include "cam/grad_cam.h"

#include <vector>

#include "util/check.h"

namespace dcam {
namespace cam {

Tensor GradCamFromActivation(const Tensor& activation,
                             const Tensor& gradient) {
  DCAM_CHECK_EQ(activation.rank(), 4);
  DCAM_CHECK(activation.shape() == gradient.shape());
  DCAM_CHECK_EQ(activation.dim(0), 1);
  const int64_t nf = activation.dim(1), H = activation.dim(2),
                W = activation.dim(3);
  const int64_t plane = H * W;

  std::vector<float> alpha(nf, 0.0f);
  const float inv = 1.0f / static_cast<float>(plane);
  for (int64_t m = 0; m < nf; ++m) {
    double acc = 0.0;
    const float* g = gradient.data() + m * plane;
    for (int64_t i = 0; i < plane; ++i) acc += g[i];
    alpha[m] = static_cast<float>(acc) * inv;
  }

  Tensor out({H, W});
  float* dst = out.data();
  for (int64_t m = 0; m < nf; ++m) {
    const float a = alpha[m];
    if (a == 0.0f) continue;
    const float* src = activation.data() + m * plane;
    for (int64_t i = 0; i < plane; ++i) dst[i] += a * src[i];
  }
  for (int64_t i = 0; i < plane; ++i) {
    if (dst[i] < 0.0f) dst[i] = 0.0f;
  }
  return out;
}

}  // namespace cam
}  // namespace dcam
