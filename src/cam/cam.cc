#include "cam/cam.h"

#include <algorithm>

#include "util/parallel.h"

namespace dcam {
namespace cam {

Tensor CamFromActivation(const Tensor& activation, const nn::Dense& head,
                         int class_idx) {
  DCAM_CHECK_EQ(activation.rank(), 4);
  Tensor out({activation.dim(0), activation.dim(2), activation.dim(3)});
  CamFromActivationInto(activation, head, class_idx, &out);
  return out;
}

void CamFromActivationInto(const Tensor& activation, const nn::Dense& head,
                           const std::vector<int>& class_idx, Tensor* out) {
  DCAM_CHECK_EQ(activation.rank(), 4);
  const int64_t B = activation.dim(0), nf = activation.dim(1),
                H = activation.dim(2), W = activation.dim(3);
  DCAM_CHECK_EQ(head.in_features(), nf);
  DCAM_CHECK_EQ(static_cast<int64_t>(class_idx.size()), B);
  DCAM_CHECK(out != nullptr);
  DCAM_CHECK(out->shape() == (Shape{B, H, W}))
      << "out must be (B, H, W), got " << ShapeToString(out->shape());
  const Tensor& w = head.weight().value;  // (classes, nf)
  for (int c : class_idx) {
    DCAM_CHECK_GE(c, 0);
    DCAM_CHECK_LT(c, head.out_features());
  }

  const int64_t plane = H * W;
  float* out_data = out->data();
  const float* act = activation.data();
  ParallelFor(0, B, [&](int64_t b) {
    float* dst = out_data + b * plane;
    std::fill(dst, dst + plane, 0.0f);
    for (int64_t m = 0; m < nf; ++m) {
      const float wm = w.at(class_idx[static_cast<size_t>(b)], m);
      if (wm == 0.0f) continue;
      const float* src = act + (b * nf + m) * plane;
      for (int64_t i = 0; i < plane; ++i) dst[i] += wm * src[i];
    }
  });
}

void CamFromActivationInto(const Tensor& activation, const nn::Dense& head,
                           int class_idx, Tensor* out) {
  DCAM_CHECK_EQ(activation.rank(), 4);
  const std::vector<int> classes(static_cast<size_t>(activation.dim(0)),
                                 class_idx);
  CamFromActivationInto(activation, head, classes, out);
}

Tensor ComputeCam(models::GapModel* model, const Tensor& series,
                  int class_idx) {
  DCAM_CHECK_EQ(series.rank(), 2);
  Tensor batch = series.Reshape({1, series.dim(0), series.dim(1)});
  model->Forward(model->PrepareInput(batch), /*training=*/false);
  Tensor cam = CamFromActivation(model->last_activation(), model->head(),
                                 class_idx);
  return cam.Reshape({cam.dim(1), cam.dim(2)});
}

Tensor BroadcastCam(const Tensor& cam, int dims) {
  DCAM_CHECK_EQ(cam.rank(), 2);
  if (cam.dim(0) == dims) return cam;
  DCAM_CHECK_EQ(cam.dim(0), 1) << "cannot broadcast multi-row CAM";
  const int64_t n = cam.dim(1);
  Tensor out({static_cast<int64_t>(dims), n});
  for (int64_t d = 0; d < dims; ++d) {
    for (int64_t t = 0; t < n; ++t) out.at(d, t) = cam.at(0, t);
  }
  return out;
}

}  // namespace cam
}  // namespace dcam
