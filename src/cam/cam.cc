#include "cam/cam.h"

namespace dcam {
namespace cam {

Tensor CamFromActivation(const Tensor& activation, const nn::Dense& head,
                         int class_idx) {
  DCAM_CHECK_EQ(activation.rank(), 4);
  const int64_t B = activation.dim(0), nf = activation.dim(1),
                H = activation.dim(2), W = activation.dim(3);
  DCAM_CHECK_EQ(head.in_features(), nf);
  DCAM_CHECK_GE(class_idx, 0);
  DCAM_CHECK_LT(class_idx, head.out_features());
  const Tensor& w = head.weight().value;  // (classes, nf)

  Tensor out({B, H, W});
  const int64_t plane = H * W;
  for (int64_t b = 0; b < B; ++b) {
    float* dst = out.data() + b * plane;
    for (int64_t m = 0; m < nf; ++m) {
      const float wm = w.at(class_idx, m);
      if (wm == 0.0f) continue;
      const float* src = activation.data() + (b * nf + m) * plane;
      for (int64_t i = 0; i < plane; ++i) dst[i] += wm * src[i];
    }
  }
  return out;
}

Tensor ComputeCam(models::GapModel* model, const Tensor& series,
                  int class_idx) {
  DCAM_CHECK_EQ(series.rank(), 2);
  Tensor batch = series.Reshape({1, series.dim(0), series.dim(1)});
  model->Forward(model->PrepareInput(batch), /*training=*/false);
  Tensor cam = CamFromActivation(model->last_activation(), model->head(),
                                 class_idx);
  return cam.Reshape({cam.dim(1), cam.dim(2)});
}

Tensor BroadcastCam(const Tensor& cam, int dims) {
  DCAM_CHECK_EQ(cam.rank(), 2);
  if (cam.dim(0) == dims) return cam;
  DCAM_CHECK_EQ(cam.dim(0), 1) << "cannot broadcast multi-row CAM";
  const int64_t n = cam.dim(1);
  Tensor out({static_cast<int64_t>(dims), n});
  for (int64_t d = 0; d < dims; ++d) {
    for (int64_t t = 0; t < n; ++t) out.at(d, t) = cam.at(0, t);
  }
  return out;
}

}  // namespace cam
}  // namespace dcam
