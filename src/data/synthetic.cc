#include "data/synthetic.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"
#include "util/rng.h"

namespace dcam {
namespace data {
namespace {

// Fills row `dst` (length n) with concatenated class-0 seed instances.
void FillBackground(SeedType seed_type, int n, int seg_len, Rng* rng,
                    float* dst) {
  for (int start = 0; start < n; start += seg_len) {
    const int len = std::min(seg_len, n - start);
    std::vector<float> seg = SeedInstance(seed_type, 0, seg_len, rng);
    std::copy(seg.begin(), seg.begin() + len, dst + start);
  }
}

// Overwrites dst[pos, pos+len) with a class-1 seed pattern and marks mask.
void Inject(SeedType seed_type, int pos, int len, Rng* rng, float* dst,
            float* mask_row) {
  std::vector<float> pattern = SeedInstance(seed_type, 1, len, rng);
  std::copy(pattern.begin(), pattern.end(), dst + pos);
  for (int t = pos; t < pos + len; ++t) mask_row[t] = 1.0f;
}

// Picks `count` distinct dimensions out of D.
std::vector<int> PickDims(int D, int count, Rng* rng) {
  std::vector<int> perm = rng->Permutation(D);
  perm.resize(count);
  return perm;
}

// Picks `count` pattern start positions pairwise separated by >= len.
// Samples whole candidate sets with restart: greedy appending can wedge
// itself (two early picks can jointly block the entire remaining range).
std::vector<int> PickDistantPositions(int n, int len, int count, Rng* rng) {
  DCAM_CHECK_LE(static_cast<int64_t>(count) * len, n)
      << "cannot place " << count << " separated patterns of length " << len
      << " in a series of length " << n;
  for (int restart = 0; restart < 10000; ++restart) {
    std::vector<int> positions;
    for (int j = 0; j < count; ++j) {
      const int pos = static_cast<int>(rng->UniformInt(n - len + 1));
      bool ok = true;
      for (int other : positions) {
        if (std::abs(other - pos) < len) {
          ok = false;
          break;
        }
      }
      if (!ok) break;
      positions.push_back(pos);
    }
    if (static_cast<int>(positions.size()) == count) return positions;
  }
  // Deterministic fallback: evenly spaced placement always satisfies the
  // separation constraint given the size check above.
  std::vector<int> positions(count);
  const int stride = count > 1 ? (n - len) / (count - 1) : 0;
  for (int j = 0; j < count; ++j) positions[j] = j * stride;
  return positions;
}

}  // namespace

std::string SyntheticSpec::Name() const {
  return SeedTypeName(seed_type) + "-Type" + std::to_string(type) + "-D" +
         std::to_string(dims);
}

Dataset BuildSynthetic(const SyntheticSpec& spec) {
  DCAM_CHECK(spec.type == 1 || spec.type == 2);
  DCAM_CHECK_GT(spec.dims, 1);
  DCAM_CHECK_GE(spec.num_inject, 1);
  DCAM_CHECK_LE(spec.num_inject, spec.dims);
  DCAM_CHECK_GT(spec.pattern_len, 4);
  DCAM_CHECK_GE(spec.length, 2 * spec.pattern_len)
      << "need room for patterns at distinct positions";
  DCAM_CHECK_GT(spec.instances_per_class, 0);

  Rng rng(spec.seed);
  const int N = 2 * spec.instances_per_class;
  const int D = spec.dims, n = spec.length, plen = spec.pattern_len;

  Dataset out;
  out.name = spec.Name();
  out.num_classes = 2;
  out.X = Tensor({N, D, n});
  out.mask = Tensor({N, D, n});
  out.y.resize(N);

  for (int i = 0; i < N; ++i) {
    const int cls = i < spec.instances_per_class ? 0 : 1;
    out.y[i] = cls;
    float* inst = out.X.data() + static_cast<int64_t>(i) * D * n;
    float* mask = out.mask.data() + static_cast<int64_t>(i) * D * n;
    for (int d = 0; d < D; ++d) {
      FillBackground(spec.seed_type, n, plen, &rng, inst + d * n);
    }

    if (spec.type == 1) {
      // Class 0: pure background. Class 1: independent injections.
      if (cls == 1) {
        for (int d : PickDims(D, spec.num_inject, &rng)) {
          const int pos = static_cast<int>(rng.UniformInt(n - plen + 1));
          Inject(spec.seed_type, pos, plen, &rng, inst + d * n,
                 mask + d * n);
        }
      }
    } else {
      // Type 2: both classes are injected; only co-occurrence differs.
      const std::vector<int> dims = PickDims(D, spec.num_inject, &rng);
      if (cls == 0) {
        const std::vector<int> positions =
            PickDistantPositions(n, plen, spec.num_inject, &rng);
        for (int j = 0; j < spec.num_inject; ++j) {
          Inject(spec.seed_type, positions[j], plen, &rng,
                 inst + dims[j] * n, mask + dims[j] * n);
        }
      } else {
        const int pos = static_cast<int>(rng.UniformInt(n - plen + 1));
        for (int j = 0; j < spec.num_inject; ++j) {
          Inject(spec.seed_type, pos, plen, &rng, inst + dims[j] * n,
                 mask + dims[j] * n);
        }
      }
    }
  }
  return out;
}

}  // namespace data
}  // namespace dcam
