// Scale-factor-parameterized corpora for the workload harness.
//
// Modeled on the TPC-H generator contract: a corpus is fully determined by
// (kind, scale factor) — SF=1 is the CI-sized base population and every
// instance count scales linearly with SF, so SF=100 is the same distribution
// two orders of magnitude larger. The per-corpus RNG seed is derived by
// hashing (kind, SF, seed base), which makes corpora deterministic across
// machines AND distinct across scale factors — an SF=10 corpus is not a
// prefix of SF=100, exactly as TPC-H's dbgen behaves.
//
// Two kinds cover the two dataset families the paper evaluates:
//   * kSynthetic — Section 5.1.1 Type-2 injected-pattern data with a
//     ground-truth mask (so dataset-scale Dr-acc sweeps stay possible);
//   * kUeaLike   — the UEA-archive-style generator's background + localized
//     class structure, mask-free, heavier per-class diversity.
//
// GenerateCorpusFile persists through data/store and is restart- and
// cache-safe: a valid file under the final path is reused (the CI lane's
// actions/cache restore), anything unreadable — including a truncated file
// from a killed job — is regenerated, and the write itself is atomic.

#ifndef DCAM_DATA_CORPUS_H_
#define DCAM_DATA_CORPUS_H_

#include <cstdint>
#include <string>

#include "data/series.h"
#include "io/status.h"

namespace dcam {
namespace data {

enum class CorpusKind { kSynthetic, kUeaLike };

std::string CorpusKindName(CorpusKind kind);

struct CorpusSpec {
  CorpusKind kind = CorpusKind::kSynthetic;
  /// Linear instance-count multiplier; SF=1 is the CI-sized base corpus.
  int scale_factor = 1;
  /// Folded into the per-corpus seed; the default is the published corpus
  /// line — change it only to synthesize alternative universes.
  uint64_t seed_base = 0xDCA5C0DEULL;

  /// "synthetic_sf4" — also the dataset name stored in the file.
  std::string Name() const;
  /// Name() + ".dcs" (dcam columnar series).
  std::string FileName() const;
};

/// The deterministic seed for this corpus (hash of kind, SF, seed base).
uint64_t CorpusSeed(const CorpusSpec& spec);

/// Builds the corpus in memory. Deterministic in `spec` alone.
Dataset BuildCorpus(const CorpusSpec& spec);

/// Ensures `dir/spec.FileName()` holds a valid store of this corpus:
/// reuses an existing file that opens and verifies cleanly (unless `force`),
/// otherwise builds and writes it atomically. `out_path` (optional) receives
/// the final path, `regenerated` (optional) whether a build happened.
io::Status GenerateCorpusFile(const CorpusSpec& spec, const std::string& dir,
                              std::string* out_path = nullptr,
                              bool force = false, bool* regenerated = nullptr);

}  // namespace data
}  // namespace dcam

#endif  // DCAM_DATA_CORPUS_H_
