// On-disk columnar series store: the persistent form of data::Dataset.
//
// Everything benchmarked before this file existed lived in process memory, so
// "dataset scale" was bounded by what a generator could rebuild per run. The
// store persists a dataset once and serves it zero-copy forever after:
//
//   header (little-endian, the only byte order we target):
//     magic        "DCAMCOL1"                           8 bytes
//     version      uint32   (kSeriesStoreVersion; readers refuse others)
//     dtype        uint32   (1 = float32, the library's only dtype)
//     flags        uint32   (bit 0: a ground-truth mask follows the columns)
//     name_len     uint32
//     N, D, n      int64    instances, dimensions, series length
//     num_classes  int32
//     name         name_len bytes
//     header_hash  uint64   FNV-1a over every header byte above
//   segments (each 64-byte aligned, each followed by its own uint64 FNV-1a):
//     labels       int32[N]
//     column d     float32[N * n] for d in [0, D)   — value (i, t) of
//                  dimension d lives at column_d[i * n + t]
//     mask col d   float32[N * n] for d in [0, D)   — only when flag bit 0
//
// The column-major (dimension-outer) layout is what makes the file a *store*
// rather than a snapshot: a per-dimension scan (dataset-level explanations,
// Section 4.6 aggregation) touches one contiguous segment, and per-segment
// checksums localize corruption to the dimension that rotted. Alignment to
// 64 bytes keeps every column cache-line- and SIMD-aligned inside the mmap.
//
// Readers open through util/mmap (MAP_SHARED read-only, so concurrent
// workload clients share one page-cache copy) and never materialize the file
// unless asked: Row() hands out pointers into the map, Instance() gathers
// one (D, n) series, ToDataset() rebuilds the full in-memory Dataset
// bit-identically to what was written. Writers go through io::AtomicFileWriter
// so a killed job can never leave a truncated file under the final path.

#ifndef DCAM_DATA_STORE_H_
#define DCAM_DATA_STORE_H_

#include <cstdint>
#include <string>

#include "data/series.h"
#include "io/status.h"
#include "util/mmap.h"

namespace dcam {
namespace data {

/// Bumped on any layout change; readers refuse files written by a different
/// version instead of guessing at offsets.
inline constexpr uint32_t kSeriesStoreVersion = 1;

/// Writes `dataset` to `path` atomically (temp + fsync + rename).
io::Status WriteSeriesStore(const Dataset& dataset, const std::string& path);

class SeriesStore {
 public:
  struct Options {
    /// Re-hash every segment at Open and refuse the file on any mismatch.
    /// Costs one sequential pass over the file (the pass the load-MBps
    /// bench measures); skip it only for files verified out of band.
    bool verify_checksums = true;
    /// false forces the buffered-read fallback (see util/mmap.h).
    bool allow_mmap = true;
  };

  SeriesStore() = default;

  /// Opens and validates `path`. Rejects wrong magic/version/dtype, a
  /// header-hash mismatch, impossible shapes, and any file whose size does
  /// not match the layout the header announces (truncation). Any previous
  /// contents of `out` are released.
  static io::Status Open(const std::string& path, const Options& options,
                         SeriesStore* out);
  static io::Status Open(const std::string& path, SeriesStore* out) {
    return Open(path, Options(), out);
  }

  const std::string& name() const { return name_; }
  int64_t size() const { return instances_; }
  int64_t dims() const { return dims_; }
  int64_t length() const { return length_; }
  int num_classes() const { return num_classes_; }
  bool has_mask() const { return has_mask_; }

  /// Total file bytes (what a full load streams through).
  size_t file_bytes() const { return file_.size(); }

  /// True when backed by a zero-copy mmap rather than the buffered fallback.
  bool mapped() const { return file_.mapped(); }

  /// Zero-copy view of dimension `d` of instance `i` (`length()` floats).
  const float* Row(int64_t i, int64_t d) const;

  /// Zero-copy view of the mask row; requires has_mask().
  const float* MaskRow(int64_t i, int64_t d) const;

  int label(int64_t i) const;

  /// Gathers instance `i` into a fresh (D, n) tensor (copies D rows out of
  /// the map — the shape ExplainService requests take).
  Tensor Instance(int64_t i) const;

  /// Gathers the ground-truth mask of instance `i`; requires has_mask().
  Tensor InstanceMask(int64_t i) const;

  /// Materializes the whole store as an in-memory Dataset, bit-identical to
  /// the Dataset that was written.
  Dataset ToDataset() const;

  /// Re-hashes every segment against its stored checksum. Names the first
  /// failing segment in the error.
  io::Status VerifyChecksums() const;

 private:
  const unsigned char* base() const { return file_.data(); }

  MappedFile file_;
  std::string name_;
  int64_t instances_ = 0;
  int64_t dims_ = 0;
  int64_t length_ = 0;
  int num_classes_ = 0;
  bool has_mask_ = false;
  size_t labels_offset_ = 0;
  size_t columns_offset_ = 0;
  size_t column_stride_ = 0;  // aligned bytes from one column start to the next
};

}  // namespace data
}  // namespace dcam

#endif  // DCAM_DATA_STORE_H_
