// Parametric generators standing in for the UCR seed datasets the paper
// injects patterns from (StarLightCurves, ShapesAll, Fish — Section 5.1.1).
//
// Substitution (documented in DESIGN.md): the archive data is not available
// offline, so each seed is a two-class family of univariate waveforms whose
// classes are locally distinguishable — the only property the Type 1 / Type 2
// builders rely on:
//   * StarLight-like — smooth periodic light curves; class 0 is a soft
//     sinusoidal variable, class 1 adds a sharp eclipse-style dip.
//   * Shapes-like — piecewise outline profiles; class 0 is a plateau/square
//     profile, class 1 a triangular ramp profile.
//   * Fish-like — band-limited bump contours differing in bump asymmetry.

#ifndef DCAM_DATA_SEEDS_H_
#define DCAM_DATA_SEEDS_H_

#include <string>
#include <vector>

namespace dcam {

class Rng;

namespace data {

enum class SeedType { kStarLight, kShapes, kFish };

std::string SeedTypeName(SeedType type);

/// One univariate instance of the given seed family and class (0 or 1),
/// length `len`, roughly zero-mean unit-scale, with mild instance-to-instance
/// variation drawn from `rng`.
std::vector<float> SeedInstance(SeedType type, int cls, int len, Rng* rng);

}  // namespace data
}  // namespace dcam

#endif  // DCAM_DATA_SEEDS_H_
