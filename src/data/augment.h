// Time-series data augmentation (Le Guennec et al., the paper's reference
// [32]): label-preserving transforms that expand a training set so the
// convolutional models generalize from the small per-class counts typical of
// the UCR/UEA problems.
//
// All transforms are (D, n) -> (D, n) and mask-aware: when an instance
// carries a ground-truth discriminant mask, the mask undergoes exactly the
// same temporal transform, so Dr-acc evaluation stays valid on augmented
// data.

#ifndef DCAM_DATA_AUGMENT_H_
#define DCAM_DATA_AUGMENT_H_

#include <cstdint>

#include "data/series.h"
#include "tensor/tensor.h"

namespace dcam {

class Rng;

namespace data {

/// Adds N(0, stddev) noise to every point.
Tensor Jitter(const Tensor& series, float stddev, Rng* rng);

/// Multiplies each dimension by an independent N(1, stddev) factor.
Tensor Scale(const Tensor& series, float stddev, Rng* rng);

/// Zeroes `num_masks` random windows of length `mask_len` in random
/// dimensions (time cutout).
Tensor TimeMask(const Tensor& series, int64_t mask_len, int num_masks,
                Rng* rng);

/// Window warping: a random window of `window` steps is stretched by
/// `factor` (> 1) or squeezed (< 1) via linear interpolation and the whole
/// series resampled back to length n. Writes the warped 0/1 mask through
/// `mask` when non-null (same index mapping, threshold 0.5).
Tensor WindowWarp(const Tensor& series, int64_t window, float factor,
                  Rng* rng, Tensor* mask = nullptr);

struct AugmentOptions {
  /// Augmented copies generated per original instance.
  int copies = 1;
  float jitter_stddev = 0.05f;
  float scale_stddev = 0.1f;
  /// Probability that a copy is window-warped (with the settings below).
  double warp_probability = 0.5;
  int64_t warp_window = 16;
  float warp_factor_low = 0.75f;
  float warp_factor_high = 1.25f;
  uint64_t seed = 1234;
};

/// Returns `dataset` plus `copies` augmented variants of every instance
/// (jitter + scale, optionally window-warped). Labels are preserved; masks,
/// when present, are transformed alongside.
Dataset Augment(const Dataset& dataset, const AugmentOptions& options = {});

}  // namespace data
}  // namespace dcam

#endif  // DCAM_DATA_AUGMENT_H_
