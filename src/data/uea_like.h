// Synthetic stand-ins for the UCR/UEA multivariate archive (Table 2).
//
// Substitution (documented in DESIGN.md): the archive is not available
// offline, so each named dataset is regenerated with matching metadata
// (|C| classes, D dimensions, length — long archives are capped so CPU
// training stays tractable) and a class structure that exercises the same
// axes the archive stresses: per-dimension spectral signatures, localized
// class-specific transients, and cross-dimension synchronized events that
// require comparing dimensions (the regime where the paper's d-architectures
// win).

#ifndef DCAM_DATA_UEA_LIKE_H_
#define DCAM_DATA_UEA_LIKE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "data/series.h"

namespace dcam {
namespace data {

struct UeaLikeSpec {
  std::string name;
  int classes;
  int dims;
  int length;
  int per_class;
};

/// The datasets regenerated for the Table 2 experiment (a metadata-matched
/// subset of the paper's 23; see DESIGN.md §3).
const std::vector<UeaLikeSpec>& UeaLikeRegistry();

/// Looks up a registry entry by name; aborts if absent.
const UeaLikeSpec& UeaLikeByName(const std::string& name);

/// Generates the dataset. The class structure is deterministic in `seed`
/// and the spec name, so train/test regeneration is reproducible.
Dataset BuildUeaLike(const UeaLikeSpec& spec, uint64_t seed);

}  // namespace data
}  // namespace dcam

#endif  // DCAM_DATA_UEA_LIKE_H_
