#include "data/corpus.h"

#include <filesystem>

#include "data/store.h"
#include "data/synthetic.h"
#include "data/uea_like.h"
#include "util/check.h"
#include "util/fnv.h"

namespace dcam {
namespace data {
namespace {

// SF=1 base populations. Both kinds share (D, n) so one registered model
// shape serves either corpus; the instance counts differ to keep the two
// files from being byte-size twins.
constexpr int kCorpusDims = 8;
constexpr int kCorpusLength = 128;
constexpr int kSyntheticPerClass = 64;   // 2 classes -> 128 instances at SF=1
constexpr int kUeaClasses = 4;
constexpr int kUeaPerClass = 24;         // 4 classes -> 96 instances at SF=1

}  // namespace

std::string CorpusKindName(CorpusKind kind) {
  switch (kind) {
    case CorpusKind::kSynthetic:
      return "synthetic";
    case CorpusKind::kUeaLike:
      return "uea";
  }
  return "unknown";
}

std::string CorpusSpec::Name() const {
  return CorpusKindName(kind) + "_sf" + std::to_string(scale_factor);
}

std::string CorpusSpec::FileName() const { return Name() + ".dcs"; }

uint64_t CorpusSeed(const CorpusSpec& spec) {
  const std::string tag = "dcam-corpus/" + CorpusKindName(spec.kind);
  uint64_t h = Fnv1a(tag.data(), tag.size());
  const int64_t sf = spec.scale_factor;
  h = Fnv1a(&sf, sizeof(sf), h);
  h = Fnv1a(&spec.seed_base, sizeof(spec.seed_base), h);
  return h;
}

Dataset BuildCorpus(const CorpusSpec& spec) {
  DCAM_CHECK_GE(spec.scale_factor, 1);
  Dataset dataset;
  switch (spec.kind) {
    case CorpusKind::kSynthetic: {
      // Type 2: the discriminant feature is cross-dimension co-occurrence —
      // the regime dCAM exists for — and the builder emits the ground-truth
      // mask, so dataset-scale Dr-acc stays measurable.
      SyntheticSpec synthetic;
      synthetic.seed_type = SeedType::kStarLight;
      synthetic.type = 2;
      synthetic.dims = kCorpusDims;
      synthetic.length = kCorpusLength;
      synthetic.pattern_len = 32;
      synthetic.num_inject = 2;
      synthetic.instances_per_class = kSyntheticPerClass * spec.scale_factor;
      synthetic.seed = CorpusSeed(spec);
      dataset = BuildSynthetic(synthetic);
      break;
    }
    case CorpusKind::kUeaLike: {
      UeaLikeSpec uea;
      uea.name = spec.Name();
      uea.classes = kUeaClasses;
      uea.dims = kCorpusDims;
      uea.length = kCorpusLength;
      uea.per_class = kUeaPerClass * spec.scale_factor;
      dataset = BuildUeaLike(uea, CorpusSeed(spec));
      break;
    }
  }
  dataset.name = spec.Name();
  return dataset;
}

io::Status GenerateCorpusFile(const CorpusSpec& spec, const std::string& dir,
                              std::string* out_path, bool force,
                              bool* regenerated) {
  const std::string path = dir + "/" + spec.FileName();
  if (out_path != nullptr) *out_path = path;
  if (regenerated != nullptr) *regenerated = false;
  if (!force) {
    // Reuse a file that opens and verifies cleanly and matches the spec's
    // announced identity; anything else (missing, truncated by a killed job,
    // bit rot, stale format version) falls through to regeneration.
    SeriesStore store;
    if (SeriesStore::Open(path, &store).ok() && store.name() == spec.Name()) {
      return io::Status::Ok();
    }
  }
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return io::Status::IoError("cannot create " + dir + ": " + ec.message());
  }
  io::Status status = WriteSeriesStore(BuildCorpus(spec), path);
  if (!status.ok()) return status;
  if (regenerated != nullptr) *regenerated = true;
  return io::Status::Ok();
}

}  // namespace data
}  // namespace dcam
