// Synthetic stand-in for the JIGSAWS robot-assisted-surgery kinematics
// dataset (Gao et al. 2014) used in the paper's Section 5.8 use case.
//
// Substitution (documented in DESIGN.md): the real recordings are not
// available offline, so we generate 76-dimensional kinematic-like series with
// the same sensor grouping — four manipulator groups (left/right PSM,
// left/right MTM) of 19 sensors each (3 Cartesian positions, 9 rotation
// matrix entries, 6 linear/angular velocities, 1 gripper angle) — segmented
// into the 11 surgical gestures G1..G11. Novice instances carry tremor and
// gripper-angle artifacts concentrated in the MTM gripper and tooltip
// rotation sensors during gestures G6 and G9, which is exactly the ground
// truth the paper's analysis recovers with dCAM; an explanation method that
// works should light up those sensors in those gestures.

#ifndef DCAM_DATA_JIGSAWS_LIKE_H_
#define DCAM_DATA_JIGSAWS_LIKE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "data/series.h"

namespace dcam {
namespace data {

/// Surgical gesture vocabulary size (G1..G11).
inline constexpr int kNumGestures = 11;

/// Sensors per manipulator group and number of groups.
inline constexpr int kSensorsPerGroup = 19;
inline constexpr int kNumGroups = 4;
inline constexpr int kJigsawsDims = kSensorsPerGroup * kNumGroups;  // 76

struct JigsawsLikeConfig {
  /// Instances per class: novice / intermediate / expert. Paper: 19/10/10.
  int novices = 19;
  int intermediates = 10;
  int experts = 10;
  /// Series length (the real dataset is variable-length; we fix it so
  /// instances batch; one gesture segment spans length/kNumGestures steps).
  int length = 220;
  uint64_t seed = 2022;

  /// Optional downscaling of dimensionality for fast tests: keeps the group
  /// structure but with fewer sensors per group (must divide 19... any value
  /// in [4, 19]; gripper + 3 rotation sensors always included).
  int sensors_per_group = kSensorsPerGroup;
};

struct JigsawsLike {
  /// Labels: 0 = novice, 1 = intermediate, 2 = expert.
  Dataset dataset;
  /// Per instance, per timestep: gesture id in [0, kNumGestures).
  std::vector<std::vector<int>> gestures;
  /// Human-readable sensor names, size D.
  std::vector<std::string> sensor_names;
  /// Indices of the sensors that carry the novice-specific artifact (the
  /// ground truth the explanation should recover).
  std::vector<int> artifact_sensors;
  /// Gestures (ids) during which the artifact is active.
  std::vector<int> artifact_gestures;
};

JigsawsLike BuildJigsawsLike(const JigsawsLikeConfig& config = {});

}  // namespace data
}  // namespace dcam

#endif  // DCAM_DATA_JIGSAWS_LIKE_H_
