#include "data/store.h"

#include <cstring>
#include <vector>

#include "io/atomic_file.h"
#include "util/check.h"
#include "util/fnv.h"

namespace dcam {
namespace data {
namespace {

constexpr char kMagic[8] = {'D', 'C', 'A', 'M', 'C', 'O', 'L', '1'};
constexpr uint32_t kDtypeFloat32 = 1;
constexpr uint32_t kFlagHasMask = 1u << 0;
constexpr size_t kSegmentAlign = 64;

// Conservative shape bound: keeps every offset computation below far from
// int64/size_t overflow while allowing corpora orders of magnitude past
// SF=100.
constexpr int64_t kMaxDim = int64_t{1} << 31;

size_t AlignUp(size_t n) {
  return (n + kSegmentAlign - 1) & ~(kSegmentAlign - 1);
}

// Every segment is stored as payload + uint64 FNV-1a + zero padding to the
// alignment boundary.
size_t SegmentBlock(size_t payload_bytes) {
  return AlignUp(payload_bytes + sizeof(uint64_t));
}

struct Layout {
  size_t header_bytes = 0;    // through the name, excluding the header hash
  size_t labels_offset = 0;
  size_t columns_offset = 0;
  size_t column_stride = 0;
  size_t file_bytes = 0;
};

Layout ComputeLayout(size_t name_len, int64_t instances, int64_t dims,
                     int64_t length, bool has_mask) {
  Layout layout;
  layout.header_bytes = 8 + 4 * sizeof(uint32_t) + 3 * sizeof(int64_t) +
                        sizeof(int32_t) + name_len;
  layout.labels_offset = AlignUp(layout.header_bytes + sizeof(uint64_t));
  layout.columns_offset =
      layout.labels_offset +
      SegmentBlock(static_cast<size_t>(instances) * sizeof(int32_t));
  layout.column_stride = SegmentBlock(static_cast<size_t>(instances) *
                                      static_cast<size_t>(length) *
                                      sizeof(float));
  const size_t column_count =
      static_cast<size_t>(dims) * (has_mask ? 2 : 1);
  layout.file_bytes =
      layout.columns_offset + layout.column_stride * column_count;
  return layout;
}

class SegmentWriter {
 public:
  explicit SegmentWriter(io::AtomicFileWriter* out) : out_(out) {}

  // Writes payload + FNV-1a(payload) + padding to the alignment boundary.
  io::Status WriteSegment(const void* payload, size_t bytes) {
    io::Status status = out_->Write(payload, bytes);
    if (!status.ok()) return status;
    const uint64_t hash = Fnv1a(payload, bytes);
    status = out_->WriteScalar(hash);
    if (!status.ok()) return status;
    return Pad(SegmentBlock(bytes) - bytes - sizeof(uint64_t));
  }

  io::Status Pad(size_t bytes) {
    static const char zeros[kSegmentAlign] = {};
    while (bytes > 0) {
      const size_t chunk = bytes < sizeof(zeros) ? bytes : sizeof(zeros);
      io::Status status = out_->Write(zeros, chunk);
      if (!status.ok()) return status;
      bytes -= chunk;
    }
    return io::Status::Ok();
  }

 private:
  io::AtomicFileWriter* out_;
};

template <typename T>
void AppendScalar(std::string* buffer, T value) {
  buffer->append(reinterpret_cast<const char*>(&value), sizeof(T));
}

uint64_t ReadU64(const unsigned char* p) {
  uint64_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

}  // namespace

io::Status WriteSeriesStore(const Dataset& dataset, const std::string& path) {
  if (dataset.X.empty() || dataset.X.rank() != 3) {
    return io::Status::InvalidArgument(
        "series store requires a non-empty (N, D, n) dataset");
  }
  const int64_t instances = dataset.size();
  const int64_t dims = dataset.dims();
  const int64_t length = dataset.length();
  if (static_cast<int64_t>(dataset.y.size()) != instances) {
    return io::Status::InvalidArgument(
        "label count does not match instance count");
  }
  const bool has_mask = !dataset.mask.empty();
  if (has_mask && dataset.mask.shape() != dataset.X.shape()) {
    return io::Status::InvalidArgument("mask shape does not match X");
  }

  io::AtomicFileWriter out(path);
  io::Status status = out.Open();
  if (!status.ok()) return status;

  // Header: assembled in memory so the hash covers exactly the bytes written.
  std::string header;
  header.append(kMagic, sizeof(kMagic));
  AppendScalar(&header, kSeriesStoreVersion);
  AppendScalar(&header, kDtypeFloat32);
  AppendScalar(&header, has_mask ? kFlagHasMask : 0u);
  AppendScalar(&header, static_cast<uint32_t>(dataset.name.size()));
  AppendScalar(&header, instances);
  AppendScalar(&header, dims);
  AppendScalar(&header, length);
  AppendScalar(&header, static_cast<int32_t>(dataset.num_classes));
  header.append(dataset.name);
  status = out.Write(header.data(), header.size());
  if (!status.ok()) return status;
  status = out.WriteScalar(Fnv1a(header.data(), header.size()));
  if (!status.ok()) return status;

  const Layout layout = ComputeLayout(dataset.name.size(), instances, dims,
                                      length, has_mask);
  SegmentWriter segments(&out);
  status = segments.Pad(layout.labels_offset - layout.header_bytes -
                        sizeof(uint64_t));
  if (!status.ok()) return status;

  std::vector<int32_t> labels(dataset.y.begin(), dataset.y.end());
  status = segments.WriteSegment(labels.data(),
                                 labels.size() * sizeof(int32_t));
  if (!status.ok()) return status;

  // Columns: transpose (N, D, n) row-major into dimension-outer segments.
  std::vector<float> column(static_cast<size_t>(instances) *
                            static_cast<size_t>(length));
  const auto write_columns = [&](const Tensor& source) -> io::Status {
    for (int64_t d = 0; d < dims; ++d) {
      for (int64_t i = 0; i < instances; ++i) {
        std::memcpy(column.data() + i * length,
                    source.data() + (i * dims + d) * length,
                    static_cast<size_t>(length) * sizeof(float));
      }
      io::Status s =
          segments.WriteSegment(column.data(), column.size() * sizeof(float));
      if (!s.ok()) return s;
    }
    return io::Status::Ok();
  };
  status = write_columns(dataset.X);
  if (!status.ok()) return status;
  if (has_mask) {
    status = write_columns(dataset.mask);
    if (!status.ok()) return status;
  }
  return out.Commit();
}

io::Status SeriesStore::Open(const std::string& path, const Options& options,
                             SeriesStore* out) {
  *out = SeriesStore();
  MappedFile::Options map_options;
  map_options.allow_mmap = options.allow_mmap;
  // The verification pass streams front to back; point-lookup traffic after
  // it is skewed-random.
  map_options.advice = options.verify_checksums
                           ? MappedFile::Advice::kSequential
                           : MappedFile::Advice::kRandom;
  io::Status status = MappedFile::Open(path, map_options, &out->file_);
  if (!status.ok()) return status;

  const unsigned char* base = out->file_.data();
  const size_t size = out->file_.size();
  const size_t fixed_header = 8 + 4 * sizeof(uint32_t) + 3 * sizeof(int64_t) +
                              sizeof(int32_t);
  if (size < fixed_header + sizeof(uint64_t)) {
    return io::Status::Corruption(path + ": too short for a series store");
  }
  if (std::memcmp(base, kMagic, sizeof(kMagic)) != 0) {
    return io::Status::Corruption(path + ": not a dcam series store");
  }
  uint32_t version, dtype, flags, name_len;
  std::memcpy(&version, base + 8, 4);
  std::memcpy(&dtype, base + 12, 4);
  std::memcpy(&flags, base + 16, 4);
  std::memcpy(&name_len, base + 20, 4);
  if (version != kSeriesStoreVersion) {
    return io::Status::InvalidArgument(
        path + ": series-store version " + std::to_string(version) +
        " unsupported (this build reads version " +
        std::to_string(kSeriesStoreVersion) + ")");
  }
  if (dtype != kDtypeFloat32) {
    return io::Status::InvalidArgument(path + ": unsupported dtype " +
                                       std::to_string(dtype));
  }
  int64_t instances, dims, length;
  int32_t num_classes;
  std::memcpy(&instances, base + 24, 8);
  std::memcpy(&dims, base + 32, 8);
  std::memcpy(&length, base + 40, 8);
  std::memcpy(&num_classes, base + 48, 4);
  if (instances <= 0 || dims <= 0 || length <= 0 || instances >= kMaxDim ||
      dims >= kMaxDim || length >= kMaxDim || num_classes < 1) {
    return io::Status::Corruption(path + ": implausible header shape");
  }
  const bool has_mask = (flags & kFlagHasMask) != 0;
  const size_t header_bytes = fixed_header + name_len;
  if (size < header_bytes + sizeof(uint64_t)) {
    return io::Status::Corruption(path + ": truncated header");
  }
  const uint64_t stored_header_hash = ReadU64(base + header_bytes);
  if (Fnv1a(base, header_bytes) != stored_header_hash) {
    return io::Status::Corruption(path + ": header checksum mismatch");
  }

  const Layout layout =
      ComputeLayout(name_len, instances, dims, length, has_mask);
  if (size != layout.file_bytes) {
    return io::Status::Corruption(
        path + ": truncated series store (" + std::to_string(size) +
        " bytes, layout requires " + std::to_string(layout.file_bytes) + ")");
  }

  out->name_.assign(reinterpret_cast<const char*>(base + fixed_header),
                    name_len);
  out->instances_ = instances;
  out->dims_ = dims;
  out->length_ = length;
  out->num_classes_ = num_classes;
  out->has_mask_ = has_mask;
  out->labels_offset_ = layout.labels_offset;
  out->columns_offset_ = layout.columns_offset;
  out->column_stride_ = layout.column_stride;

  if (options.verify_checksums) {
    status = out->VerifyChecksums();
    if (!status.ok()) return status;
    out->file_.Advise(MappedFile::Advice::kRandom);
  }
  return io::Status::Ok();
}

const float* SeriesStore::Row(int64_t i, int64_t d) const {
  DCAM_CHECK_GE(i, 0);
  DCAM_CHECK_LT(i, instances_);
  DCAM_CHECK_GE(d, 0);
  DCAM_CHECK_LT(d, dims_);
  return reinterpret_cast<const float*>(base() + columns_offset_ +
                                        static_cast<size_t>(d) *
                                            column_stride_) +
         i * length_;
}

const float* SeriesStore::MaskRow(int64_t i, int64_t d) const {
  DCAM_CHECK(has_mask_);
  DCAM_CHECK_GE(i, 0);
  DCAM_CHECK_LT(i, instances_);
  DCAM_CHECK_GE(d, 0);
  DCAM_CHECK_LT(d, dims_);
  return reinterpret_cast<const float*>(
             base() + columns_offset_ +
             static_cast<size_t>(dims_ + d) * column_stride_) +
         i * length_;
}

int SeriesStore::label(int64_t i) const {
  DCAM_CHECK_GE(i, 0);
  DCAM_CHECK_LT(i, instances_);
  int32_t label;
  std::memcpy(&label, base() + labels_offset_ + i * sizeof(int32_t), 4);
  return label;
}

Tensor SeriesStore::Instance(int64_t i) const {
  Tensor out({dims_, length_});
  for (int64_t d = 0; d < dims_; ++d) {
    std::memcpy(out.data() + d * length_, Row(i, d),
                static_cast<size_t>(length_) * sizeof(float));
  }
  return out;
}

Tensor SeriesStore::InstanceMask(int64_t i) const {
  Tensor out({dims_, length_});
  for (int64_t d = 0; d < dims_; ++d) {
    std::memcpy(out.data() + d * length_, MaskRow(i, d),
                static_cast<size_t>(length_) * sizeof(float));
  }
  return out;
}

Dataset SeriesStore::ToDataset() const {
  Dataset dataset;
  dataset.name = name_;
  dataset.num_classes = num_classes_;
  dataset.X = Tensor({instances_, dims_, length_});
  dataset.y.resize(instances_);
  for (int64_t i = 0; i < instances_; ++i) {
    dataset.y[i] = label(i);
    for (int64_t d = 0; d < dims_; ++d) {
      std::memcpy(dataset.X.data() + (i * dims_ + d) * length_, Row(i, d),
                  static_cast<size_t>(length_) * sizeof(float));
    }
  }
  if (has_mask_) {
    dataset.mask = Tensor({instances_, dims_, length_});
    for (int64_t i = 0; i < instances_; ++i) {
      for (int64_t d = 0; d < dims_; ++d) {
        std::memcpy(dataset.mask.data() + (i * dims_ + d) * length_,
                    MaskRow(i, d),
                    static_cast<size_t>(length_) * sizeof(float));
      }
    }
  }
  return dataset;
}

io::Status SeriesStore::VerifyChecksums() const {
  const auto check = [&](size_t offset, size_t bytes,
                         const std::string& what) -> io::Status {
    const uint64_t stored = ReadU64(base() + offset + bytes);
    if (Fnv1a(base() + offset, bytes) != stored) {
      return io::Status::Corruption("checksum mismatch in " + what + " of " +
                                    name_);
    }
    return io::Status::Ok();
  };
  io::Status status =
      check(labels_offset_, static_cast<size_t>(instances_) * sizeof(int32_t),
            "labels segment");
  if (!status.ok()) return status;
  const size_t column_bytes = static_cast<size_t>(instances_) *
                              static_cast<size_t>(length_) * sizeof(float);
  for (int64_t d = 0; d < dims_; ++d) {
    status = check(columns_offset_ + static_cast<size_t>(d) * column_stride_,
                   column_bytes, "column " + std::to_string(d));
    if (!status.ok()) return status;
  }
  if (has_mask_) {
    for (int64_t d = 0; d < dims_; ++d) {
      status = check(columns_offset_ +
                         static_cast<size_t>(dims_ + d) * column_stride_,
                     column_bytes, "mask column " + std::to_string(d));
      if (!status.ok()) return status;
    }
  }
  return io::Status::Ok();
}

}  // namespace data
}  // namespace dcam
