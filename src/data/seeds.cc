#include "data/seeds.h"

#include <cmath>

#include "util/check.h"
#include "util/rng.h"

namespace dcam {
namespace data {
namespace {

constexpr double kTwoPi = 2.0 * M_PI;

std::vector<float> StarLight(int cls, int len, Rng* rng) {
  // Smooth periodic light curve: one full period over the instance.
  const double phase = rng->Uniform(0.0, kTwoPi);
  const double amp = rng->Uniform(0.8, 1.2);
  std::vector<float> out(len);
  for (int t = 0; t < len; ++t) {
    const double x = kTwoPi * t / len + phase;
    double v = amp * std::sin(x) + 0.25 * amp * std::sin(2.0 * x);
    if (cls == 1) {
      // Eclipse-style dip: a localized gaussian notch at mid-phase, wide
      // enough (~1/4 of the instance) to be visible through convolution.
      const double center = len * 0.5;
      const double width = len * 0.12;
      const double dt = (t - center) / width;
      v -= 2.5 * amp * std::exp(-dt * dt);
    }
    out[t] = static_cast<float>(v + rng->Normal(0.0, 0.05));
  }
  return out;
}

std::vector<float> Shapes(int cls, int len, Rng* rng) {
  // Outline-style profile. Class 0: plateau (square), class 1: ramp
  // (triangle). Plateau/apex position jitters per instance.
  const double amp = rng->Uniform(0.8, 1.2);
  const int start = static_cast<int>(rng->UniformInt(std::max(1, len / 8)));
  const int span = len / 2;
  std::vector<float> out(len);
  for (int t = 0; t < len; ++t) {
    double v = -0.5 * amp;
    if (t >= start && t < start + span) {
      if (cls == 0) {
        v = 0.5 * amp;  // plateau
      } else {
        const double u = static_cast<double>(t - start) / span;  // 0..1
        v = amp * (u < 0.5 ? 2.0 * u : 2.0 * (1.0 - u)) - 0.5 * amp;
      }
    }
    out[t] = static_cast<float>(v + rng->Normal(0.0, 0.05));
  }
  return out;
}

std::vector<float> Fish(int cls, int len, Rng* rng) {
  // Band-limited double-bump contour; class 1 skews the mass to the right.
  const double amp = rng->Uniform(0.8, 1.2);
  const double skew = cls == 0 ? 0.35 : 0.65;
  std::vector<float> out(len);
  for (int t = 0; t < len; ++t) {
    const double u = static_cast<double>(t) / len;
    const double d1 = (u - skew) / 0.10;
    const double d2 = (u - (1.0 - skew)) / 0.18;
    const double v =
        amp * std::exp(-d1 * d1) + 0.5 * amp * std::exp(-d2 * d2) - 0.3 * amp;
    out[t] = static_cast<float>(v + rng->Normal(0.0, 0.05));
  }
  return out;
}

}  // namespace

std::string SeedTypeName(SeedType type) {
  switch (type) {
    case SeedType::kStarLight:
      return "StarLightCurve";
    case SeedType::kShapes:
      return "ShapesAll";
    case SeedType::kFish:
      return "Fish";
  }
  return "?";
}

std::vector<float> SeedInstance(SeedType type, int cls, int len, Rng* rng) {
  DCAM_CHECK(cls == 0 || cls == 1) << "seed families are two-class";
  DCAM_CHECK_GT(len, 4);
  DCAM_CHECK(rng != nullptr);
  switch (type) {
    case SeedType::kStarLight:
      return StarLight(cls, len, rng);
    case SeedType::kShapes:
      return Shapes(cls, len, rng);
    case SeedType::kFish:
      return Fish(cls, len, rng);
  }
  DCAM_CHECK(false) << "unreachable";
  return {};
}

}  // namespace data
}  // namespace dcam
