#include "data/uea_like.h"

#include <cmath>

#include "util/check.h"
#include "util/fnv.h"
#include "util/rng.h"

namespace dcam {
namespace data {
namespace {

constexpr double kTwoPi = 2.0 * M_PI;

uint64_t HashName(const std::string& name) {
  // The historical seed (a truncated FNV offset basis) is kept verbatim: it
  // feeds every synthetic dataset's structure RNG, so changing it would
  // regenerate different data under the same dataset names.
  return Fnv1a(name.data(), name.size(), 1469598103934665603ULL);
}

// Background spectrum shared by every class of a dataset: classes must not
// be separable from global frequency/phase content alone, otherwise even a
// tiny recurrent model saturates the task. What distinguishes classes is the
// *localized* structure below — the regime the paper's introduction
// motivates (patterns of interest in a subset of dimensions).
struct DatasetBackground {
  std::vector<double> freq;  // per dimension
  std::vector<double> amp;   // per dimension
  std::vector<double> phase;  // per dimension
};

// Per-class latent structure: localized transients only.
struct ClassProfile {
  int event_dim_a = 0;     // dimensions carrying the synchronized event
  int event_dim_b = 0;
  double event_pos = 0.5;  // relative position of the event
  int bump_dim = 0;        // dimension carrying the solo transient
  double bump_pos = 0.5;
};

DatasetBackground MakeBackground(int dims, Rng* rng) {
  DatasetBackground bg;
  bg.freq.resize(dims);
  bg.amp.resize(dims);
  bg.phase.resize(dims);
  for (int d = 0; d < dims; ++d) {
    bg.freq[d] = rng->Uniform(1.0, 5.0);
    bg.amp[d] = rng->Uniform(0.5, 1.2);
    bg.phase[d] = rng->Uniform(0.0, kTwoPi);
  }
  return bg;
}

ClassProfile MakeProfile(int dims, Rng* rng) {
  ClassProfile p;
  p.event_dim_a = static_cast<int>(rng->UniformInt(dims));
  p.event_dim_b = dims > 1
                      ? static_cast<int>((p.event_dim_a + 1 +
                                          rng->UniformInt(dims - 1)) %
                                         dims)
                      : p.event_dim_a;
  p.event_pos = rng->Uniform(0.15, 0.85);
  p.bump_dim = static_cast<int>(rng->UniformInt(dims));
  p.bump_pos = rng->Uniform(0.15, 0.85);
  return p;
}

}  // namespace

const std::vector<UeaLikeSpec>& UeaLikeRegistry() {
  // Metadata from Table 2 of the paper; lengths above 160 are capped (noted
  // in DESIGN.md) so the full 12-model sweep trains on CPU.
  static const std::vector<UeaLikeSpec>* registry =
      new std::vector<UeaLikeSpec>({
          {"RacketSports", 4, 6, 30, 24},
          {"BasicMotions", 4, 6, 100, 20},
          {"Libras", 15, 2, 45, 12},
          {"NATOPS", 6, 24, 51, 16},
          {"FingerMovements", 2, 28, 50, 24},
          {"PenDigits", 10, 2, 8, 20},
          {"LSST", 14, 6, 36, 12},
          {"Epilepsy", 4, 3, 160, 20},
      });
  return *registry;
}

const UeaLikeSpec& UeaLikeByName(const std::string& name) {
  for (const UeaLikeSpec& spec : UeaLikeRegistry()) {
    if (spec.name == name) return spec;
  }
  DCAM_CHECK(false) << "unknown UEA-like dataset: " << name;
  static UeaLikeSpec dummy;
  return dummy;
}

Dataset BuildUeaLike(const UeaLikeSpec& spec, uint64_t seed) {
  DCAM_CHECK_GT(spec.classes, 1);
  DCAM_CHECK_GT(spec.dims, 0);
  DCAM_CHECK_GT(spec.length, 4);
  DCAM_CHECK_GT(spec.per_class, 1);

  // Class structure is a deterministic function of (name, seed) so separate
  // train/test generations see the same classes.
  Rng structure_rng(HashName(spec.name) ^ 0x5DEECE66DULL);
  const DatasetBackground bg = MakeBackground(spec.dims, &structure_rng);
  std::vector<ClassProfile> profiles;
  profiles.reserve(spec.classes);
  for (int c = 0; c < spec.classes; ++c) {
    profiles.push_back(MakeProfile(spec.dims, &structure_rng));
  }

  Rng rng(seed ^ HashName(spec.name));
  const int N = spec.classes * spec.per_class;
  const int D = spec.dims, n = spec.length;

  Dataset out;
  out.name = spec.name;
  out.num_classes = spec.classes;
  out.X = Tensor({N, D, n});
  out.y.resize(N);

  const double event_width = std::max(1.5, n * 0.05);
  for (int i = 0; i < N; ++i) {
    const int cls = i / spec.per_class;
    out.y[i] = cls;
    const ClassProfile& p = profiles[cls];
    // Per-instance phase jitter is large: the classes share the background
    // spectrum, so global frequency/phase content carries no label signal.
    const double phase_jitter = rng.Uniform(0.0, kTwoPi);
    float* inst = out.X.data() + static_cast<int64_t>(i) * D * n;
    for (int d = 0; d < D; ++d) {
      float* row = inst + d * n;
      for (int t = 0; t < n; ++t) {
        const double x =
            kTwoPi * bg.freq[d] * t / n + bg.phase[d] + phase_jitter;
        row[t] = static_cast<float>(bg.amp[d] * std::sin(x) +
                                    rng.Normal(0.0, 0.25));
      }
    }
    // Synchronized transient on two class-specific dimensions (needs
    // cross-dimension comparison to exploit).
    const double ec = p.event_pos * n + rng.Uniform(-0.02, 0.02) * n;
    for (int d : {p.event_dim_a, p.event_dim_b}) {
      float* row = inst + d * n;
      for (int t = 0; t < n; ++t) {
        const double dt = (t - ec) / event_width;
        row[t] += static_cast<float>(2.0 * std::exp(-dt * dt));
      }
    }
    // Solo transient on one class-specific dimension (single-dimension
    // feature).
    {
      const double bc = p.bump_pos * n + rng.Uniform(-0.02, 0.02) * n;
      float* row = inst + p.bump_dim * n;
      for (int t = 0; t < n; ++t) {
        const double dt = (t - bc) / event_width;
        row[t] -= static_cast<float>(1.2 * std::exp(-dt * dt));
      }
    }
  }
  return out;
}

}  // namespace data
}  // namespace dcam
