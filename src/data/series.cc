#include "data/series.h"

#include <cmath>

#include "util/check.h"
#include "util/rng.h"

namespace dcam {
namespace data {

Tensor Dataset::Instance(int64_t i) const {
  DCAM_CHECK_GE(i, 0);
  DCAM_CHECK_LT(i, size());
  const int64_t D = dims(), n = length();
  Tensor out({D, n});
  std::copy(X.data() + i * D * n, X.data() + (i + 1) * D * n, out.data());
  return out;
}

Tensor Dataset::InstanceMask(int64_t i) const {
  DCAM_CHECK(!mask.empty()) << "dataset has no ground-truth mask";
  DCAM_CHECK_GE(i, 0);
  DCAM_CHECK_LT(i, size());
  const int64_t D = dims(), n = length();
  Tensor out({D, n});
  std::copy(mask.data() + i * D * n, mask.data() + (i + 1) * D * n,
            out.data());
  return out;
}

Dataset Dataset::Subset(const std::vector<int64_t>& indices) const {
  Dataset out;
  out.name = name;
  out.num_classes = num_classes;
  const int64_t D = dims(), n = length();
  const int64_t N = static_cast<int64_t>(indices.size());
  DCAM_CHECK_GT(N, 0);
  out.X = Tensor({N, D, n});
  out.y.resize(N);
  if (!mask.empty()) out.mask = Tensor({N, D, n});
  for (int64_t j = 0; j < N; ++j) {
    const int64_t i = indices[j];
    DCAM_CHECK_GE(i, 0);
    DCAM_CHECK_LT(i, size());
    std::copy(X.data() + i * D * n, X.data() + (i + 1) * D * n,
              out.X.data() + j * D * n);
    out.y[j] = y[i];
    if (!mask.empty()) {
      std::copy(mask.data() + i * D * n, mask.data() + (i + 1) * D * n,
                out.mask.data() + j * D * n);
    }
  }
  return out;
}

void StratifiedSplit(const Dataset& all, double train_fraction, Rng* rng,
                     Dataset* train, Dataset* rest) {
  DCAM_CHECK(rng != nullptr);
  DCAM_CHECK(train != nullptr);
  DCAM_CHECK(rest != nullptr);
  DCAM_CHECK_GT(train_fraction, 0.0);
  DCAM_CHECK_LT(train_fraction, 1.0);
  std::vector<std::vector<int64_t>> by_class(all.num_classes);
  for (int64_t i = 0; i < all.size(); ++i) by_class[all.y[i]].push_back(i);
  std::vector<int64_t> train_idx, rest_idx;
  for (auto& idx : by_class) {
    rng->Shuffle(&idx);
    const int64_t cut = std::max<int64_t>(
        1, static_cast<int64_t>(std::llround(train_fraction * idx.size())));
    for (int64_t j = 0; j < static_cast<int64_t>(idx.size()); ++j) {
      (j < cut ? train_idx : rest_idx).push_back(idx[j]);
    }
  }
  DCAM_CHECK(!rest_idx.empty())
      << "split leaves no held-out instances; reduce train_fraction";
  rng->Shuffle(&train_idx);
  rng->Shuffle(&rest_idx);
  *train = all.Subset(train_idx);
  *rest = all.Subset(rest_idx);
}

void ZNormalize(Dataset* dataset) {
  DCAM_CHECK(dataset != nullptr);
  const int64_t N = dataset->size(), D = dataset->dims(), n = dataset->length();
  for (int64_t i = 0; i < N * D; ++i) {
    float* row = dataset->X.data() + i * n;
    double sum = 0.0, sq = 0.0;
    for (int64_t t = 0; t < n; ++t) {
      sum += row[t];
      sq += static_cast<double>(row[t]) * row[t];
    }
    const double mean = sum / n;
    double var = sq / n - mean * mean;
    if (var < 1e-12) var = 1e-12;
    const float inv = static_cast<float>(1.0 / std::sqrt(var));
    for (int64_t t = 0; t < n; ++t) {
      row[t] = (row[t] - static_cast<float>(mean)) * inv;
    }
  }
}

}  // namespace data
}  // namespace dcam
