#include "data/jigsaws_like.h"

#include <cmath>

#include "util/check.h"
#include "util/rng.h"

namespace dcam {
namespace data {
namespace {

constexpr double kTwoPi = 2.0 * M_PI;

const char* kGroupNames[kNumGroups] = {"PSM-L", "PSM-R", "MTM-L", "MTM-R"};

// Role of sensor j within a group of s sensors.
enum class Role { kPosition, kRotation, kVelocity, kGripper };

Role SensorRole(int j, int s) {
  if (j == s - 1) return Role::kGripper;
  if (j < 3) return Role::kPosition;
  // Remaining sensors split ~60/40 between rotation and velocity, mirroring
  // the real 9 rotation + 6 velocity layout.
  const int non_fixed = s - 4;
  const int rot = std::max(1, non_fixed * 3 / 5);
  return (j - 3) < rot ? Role::kRotation : Role::kVelocity;
}

const char* RoleName(Role role) {
  switch (role) {
    case Role::kPosition:
      return "pos";
    case Role::kRotation:
      return "rot";
    case Role::kVelocity:
      return "vel";
    case Role::kGripper:
      return "gripper";
  }
  return "?";
}

}  // namespace

JigsawsLike BuildJigsawsLike(const JigsawsLikeConfig& config) {
  DCAM_CHECK_GE(config.sensors_per_group, 4);
  DCAM_CHECK_LE(config.sensors_per_group, kSensorsPerGroup);
  DCAM_CHECK_GE(config.length, kNumGestures * 4)
      << "need a few steps per gesture";
  const int s = config.sensors_per_group;
  const int D = s * kNumGroups;
  const int n = config.length;
  const int N = config.novices + config.intermediates + config.experts;
  DCAM_CHECK_GT(N, 0);
  const int seg = n / kNumGestures;

  JigsawsLike out;
  out.dataset.name = "JIGSAWS-like";
  out.dataset.num_classes = 3;
  out.dataset.X = Tensor({N, D, n});
  out.dataset.y.resize(N);
  out.gestures.resize(N);

  // Sensor names and the artifact ground truth: MTM gripper angles plus the
  // leading tooltip-rotation sensors of PSM-R / MTM-R.
  for (int g = 0; g < kNumGroups; ++g) {
    for (int j = 0; j < s; ++j) {
      const Role role = SensorRole(j, s);
      out.sensor_names.push_back(std::string(kGroupNames[g]) + "/" +
                                 RoleName(role) + "_" + std::to_string(j));
    }
  }
  auto sensor_index = [&](int group, int j) { return group * s + j; };
  out.artifact_sensors = {
      sensor_index(2, s - 1),  // MTM-L gripper angle
      sensor_index(3, s - 1),  // MTM-R gripper angle
      sensor_index(1, 3),      // PSM-R tooltip rotation
      sensor_index(3, 3),      // MTM-R tooltip rotation
  };
  out.artifact_gestures = {5, 8};  // G6 and G9 (0-based ids)

  auto is_artifact_sensor = [&](int d) {
    for (int a : out.artifact_sensors) {
      if (a == d) return true;
    }
    return false;
  };
  auto is_artifact_gesture = [&](int g) {
    for (int a : out.artifact_gestures) {
      if (a == g) return true;
    }
    return false;
  };

  Rng rng(config.seed);
  for (int i = 0; i < N; ++i) {
    const int cls = i < config.novices
                        ? 0
                        : (i < config.novices + config.intermediates ? 1 : 2);
    out.dataset.y[i] = cls;
    out.gestures[i].resize(n);
    for (int t = 0; t < n; ++t) {
      out.gestures[i][t] = std::min(kNumGestures - 1, t / seg);
    }

    float* inst = out.dataset.X.data() + static_cast<int64_t>(i) * D * n;
    for (int d = 0; d < D; ++d) {
      const Role role = SensorRole(d % s, s);
      float* row = inst + d * n;
      // Smooth baseline motion: two slow sinusoids with per-gesture offsets.
      const double f1 = rng.Uniform(0.8, 2.0), f2 = rng.Uniform(2.0, 4.0);
      const double ph1 = rng.Uniform(0.0, kTwoPi), ph2 = rng.Uniform(0.0, kTwoPi);
      const double amp = role == Role::kVelocity ? 0.4 : 1.0;
      std::vector<double> gesture_offset(kNumGestures);
      for (double& o : gesture_offset) o = rng.Uniform(-0.5, 0.5);
      for (int t = 0; t < n; ++t) {
        const double x = static_cast<double>(t) / n;
        double v = amp * (std::sin(kTwoPi * f1 * x + ph1) +
                          0.4 * std::sin(kTwoPi * f2 * x + ph2));
        v += gesture_offset[out.gestures[i][t]];
        v += rng.Normal(0.0, 0.05);
        row[t] = static_cast<float>(v);
      }
      // Skill-dependent artifact: tremor + gripper overshoot on the artifact
      // sensors during G6/G9. Novices: strong, both gestures. Intermediates:
      // mild, G9 only. Experts: none.
      if (is_artifact_sensor(d) && cls != 2) {
        const double strength = cls == 0 ? 1.6 : 0.6;
        for (int t = 0; t < n; ++t) {
          const int g = out.gestures[i][t];
          if (!is_artifact_gesture(g)) continue;
          if (cls == 1 && g != 8) continue;  // intermediates: G9 only
          const double tremor =
              strength * std::sin(kTwoPi * 9.0 * t / seg) * 0.5;
          row[t] += static_cast<float>(tremor + rng.Normal(0.0, 0.2 * strength));
        }
      }
    }
  }
  return out;
}

}  // namespace data
}  // namespace dcam
