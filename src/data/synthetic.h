// The paper's synthetic benchmark datasets (Section 5.1.1): multivariate
// series assembled from univariate seed instances, with known injected
// discriminant patterns and a per-point ground-truth mask for Dr-acc.
//
//   Type 1 — class 0 is pure background (concatenated class-0 seed
//   instances per dimension); class 1 injects class-1 seed patterns into
//   `num_inject` random dimensions at random, independent positions. The
//   discriminant feature lives in single dimensions.
//
//   Type 2 — both classes receive `num_inject` injected patterns; in class 0
//   they land at pairwise-distant positions, in class 1 they land at the
//   same position across dimensions. The discriminant feature is the
//   co-occurrence, detectable only by comparing dimensions.

#ifndef DCAM_DATA_SYNTHETIC_H_
#define DCAM_DATA_SYNTHETIC_H_

#include <cstdint>

#include "data/seeds.h"
#include "data/series.h"

namespace dcam {
namespace data {

struct SyntheticSpec {
  SeedType seed_type = SeedType::kStarLight;
  /// 1 or 2 (see file comment).
  int type = 1;
  /// Number of dimensions D (the paper sweeps 10..100).
  int dims = 10;
  /// Series length n; must be a multiple of pattern_len.
  int length = 128;
  /// Length of background segments and injected patterns.
  int pattern_len = 32;
  /// Number of dimensions receiving an injected pattern.
  int num_inject = 2;
  /// Instances generated per class.
  int instances_per_class = 30;
  uint64_t seed = 7;

  std::string Name() const;
};

/// Builds the dataset; labels are 0 (paper's "Class 1") and 1 ("Class 2"),
/// and `mask` marks every injected point (1.0) in every instance.
Dataset BuildSynthetic(const SyntheticSpec& spec);

}  // namespace data
}  // namespace dcam

#endif  // DCAM_DATA_SYNTHETIC_H_
