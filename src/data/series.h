// Dataset container for multivariate data series classification.

#ifndef DCAM_DATA_SERIES_H_
#define DCAM_DATA_SERIES_H_

#include <cstdint>
#include <string>
#include <vector>

#include "tensor/tensor.h"

namespace dcam {

class Rng;

namespace data {

/// A labelled collection of fixed-length multivariate series.
struct Dataset {
  std::string name;
  /// Instances, shape (N, D, n).
  Tensor X;
  /// Class labels in [0, num_classes).
  std::vector<int> y;
  int num_classes = 0;
  /// Optional (N, D, n) ground-truth mask: 1 where a point belongs to an
  /// injected discriminant pattern, 0 elsewhere. Empty when unavailable.
  Tensor mask;

  int64_t size() const { return X.empty() ? 0 : X.dim(0); }
  int64_t dims() const { return X.empty() ? 0 : X.dim(1); }
  int64_t length() const { return X.empty() ? 0 : X.dim(2); }

  /// Instance i as a (D, n) tensor (shares storage).
  Tensor Instance(int64_t i) const;

  /// Ground-truth mask of instance i as (D, n); requires a mask.
  Tensor InstanceMask(int64_t i) const;

  /// Subset by indices (copies).
  Dataset Subset(const std::vector<int64_t>& indices) const;
};

/// Splits into (train, rest) with `train_fraction` of each class in train,
/// shuffled by `rng` (the paper's 80/20 class-balanced split, Section 5.2).
void StratifiedSplit(const Dataset& all, double train_fraction, Rng* rng,
                     Dataset* train, Dataset* rest);

/// Z-normalizes every (instance, dimension) row in place.
void ZNormalize(Dataset* dataset);

}  // namespace data
}  // namespace dcam

#endif  // DCAM_DATA_SERIES_H_
