#include "data/augment.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/rng.h"

namespace dcam {
namespace data {
namespace {

void CheckSeries(const Tensor& series) {
  DCAM_CHECK_EQ(series.rank(), 2);
  DCAM_CHECK_GT(series.dim(0), 0);
  DCAM_CHECK_GT(series.dim(1), 0);
}

// Linear resample of one row from `src` positions [0, len) to `out_len`
// points.
void ResampleRow(const float* src, int64_t len, float* dst, int64_t out_len) {
  for (int64_t i = 0; i < out_len; ++i) {
    const double pos = out_len == 1
                           ? 0.0
                           : static_cast<double>(i) * (len - 1) / (out_len - 1);
    const int64_t lo = static_cast<int64_t>(pos);
    const int64_t hi = std::min(lo + 1, len - 1);
    const double frac = pos - static_cast<double>(lo);
    dst[i] = static_cast<float>((1.0 - frac) * src[lo] + frac * src[hi]);
  }
}

}  // namespace

Tensor Jitter(const Tensor& series, float stddev, Rng* rng) {
  CheckSeries(series);
  DCAM_CHECK_GE(stddev, 0.0f);
  DCAM_CHECK(rng != nullptr);
  Tensor out = series.Clone();
  for (int64_t i = 0; i < out.size(); ++i) {
    out[i] += static_cast<float>(rng->Normal(0.0, stddev));
  }
  return out;
}

Tensor Scale(const Tensor& series, float stddev, Rng* rng) {
  CheckSeries(series);
  DCAM_CHECK_GE(stddev, 0.0f);
  DCAM_CHECK(rng != nullptr);
  const int64_t d = series.dim(0), n = series.dim(1);
  Tensor out = series.Clone();
  for (int64_t j = 0; j < d; ++j) {
    const float f = static_cast<float>(rng->Normal(1.0, stddev));
    float* row = out.data() + j * n;
    for (int64_t t = 0; t < n; ++t) row[t] *= f;
  }
  return out;
}

Tensor TimeMask(const Tensor& series, int64_t mask_len, int num_masks,
                Rng* rng) {
  CheckSeries(series);
  DCAM_CHECK_GE(num_masks, 0);
  DCAM_CHECK(rng != nullptr);
  const int64_t d = series.dim(0), n = series.dim(1);
  DCAM_CHECK_GE(mask_len, 1);
  DCAM_CHECK_LE(mask_len, n);
  Tensor out = series.Clone();
  for (int m = 0; m < num_masks; ++m) {
    const int64_t dim = rng->UniformInt(d);
    const int64_t start = rng->UniformInt(n - mask_len + 1);
    float* row = out.data() + dim * n;
    for (int64_t t = start; t < start + mask_len; ++t) row[t] = 0.0f;
  }
  return out;
}

Tensor WindowWarp(const Tensor& series, int64_t window, float factor,
                  Rng* rng, Tensor* mask) {
  CheckSeries(series);
  DCAM_CHECK(rng != nullptr);
  DCAM_CHECK_GT(factor, 0.0f);
  const int64_t d = series.dim(0), n = series.dim(1);
  DCAM_CHECK_GE(window, 2);
  DCAM_CHECK_LE(window, n);
  if (mask != nullptr && !mask->empty()) {
    DCAM_CHECK(mask->shape() == series.shape());
  }

  const int64_t start = rng->UniformInt(n - window + 1);
  const int64_t warped_len =
      std::max<int64_t>(2, static_cast<int64_t>(std::lround(
                               static_cast<double>(window) * factor)));
  const int64_t mid_len = (start) + warped_len + (n - start - window);

  auto warp_rows = [&](const Tensor& src, Tensor* dst, bool binary) {
    std::vector<float> scratch(static_cast<size_t>(mid_len));
    std::vector<float> warped(static_cast<size_t>(warped_len));
    for (int64_t j = 0; j < d; ++j) {
      const float* row = src.data() + j * n;
      // 1. stretch/squeeze the window
      ResampleRow(row + start, window, warped.data(), warped_len);
      // 2. concatenate prefix + warped + suffix
      std::copy(row, row + start, scratch.data());
      std::copy(warped.begin(), warped.end(), scratch.data() + start);
      std::copy(row + start + window, row + n,
                scratch.data() + start + warped_len);
      // 3. resample the whole thing back to n
      float* out_row = dst->data() + j * n;
      ResampleRow(scratch.data(), mid_len, out_row, n);
      if (binary) {
        for (int64_t t = 0; t < n; ++t) {
          out_row[t] = out_row[t] >= 0.5f ? 1.0f : 0.0f;
        }
      }
    }
  };

  Tensor out({d, n});
  warp_rows(series, &out, /*binary=*/false);
  if (mask != nullptr && !mask->empty()) {
    Tensor warped_mask({d, n});
    warp_rows(*mask, &warped_mask, /*binary=*/true);
    *mask = std::move(warped_mask);
  }
  return out;
}

Dataset Augment(const Dataset& dataset, const AugmentOptions& options) {
  DCAM_CHECK_GT(dataset.size(), 0);
  DCAM_CHECK_GE(options.copies, 0);
  const int64_t n_orig = dataset.size();
  const int64_t d = dataset.dims(), n = dataset.length();
  const int64_t n_out = n_orig * (1 + options.copies);
  const bool has_mask = !dataset.mask.empty();

  Rng rng(options.seed);
  Dataset out;
  out.name = dataset.name + "+aug";
  out.num_classes = dataset.num_classes;
  out.X = Tensor({n_out, d, n});
  if (has_mask) out.mask = Tensor({n_out, d, n});
  out.y.reserve(static_cast<size_t>(n_out));

  int64_t row = 0;
  auto emit = [&](const Tensor& series, const Tensor& mask, int label) {
    std::copy(series.data(), series.data() + d * n, out.X.data() + row * d * n);
    if (has_mask) {
      std::copy(mask.data(), mask.data() + d * n,
                out.mask.data() + row * d * n);
    }
    out.y.push_back(label);
    ++row;
  };

  for (int64_t i = 0; i < n_orig; ++i) {
    const Tensor series = dataset.Instance(i);
    const Tensor mask = has_mask ? dataset.InstanceMask(i) : Tensor();
    emit(series, mask, dataset.y[static_cast<size_t>(i)]);
    for (int c = 0; c < options.copies; ++c) {
      Tensor aug = Jitter(series, options.jitter_stddev, &rng);
      aug = Scale(aug, options.scale_stddev, &rng);
      Tensor aug_mask = has_mask ? mask.Clone() : Tensor();
      if (rng.Uniform() < options.warp_probability) {
        const float factor = static_cast<float>(rng.Uniform(
            options.warp_factor_low, options.warp_factor_high));
        aug = WindowWarp(aug, std::min(options.warp_window, n), factor, &rng,
                         has_mask ? &aug_mask : nullptr);
      }
      emit(aug, aug_mask, dataset.y[static_cast<size_t>(i)]);
    }
  }
  DCAM_CHECK_EQ(row, n_out);
  return out;
}

}  // namespace data
}  // namespace dcam
