// Elastic and lock-step distances between multivariate data series.
//
// The paper's introduction names k-NN classification under the Euclidean and
// Dynamic Time Warping distances as the standard data-series classification
// baseline [12]; this module implements both so the deep models of Tables 2-3
// can be compared against the classical approach (bench_knn).
//
// Multivariate DTW comes in two standard flavours (Shokoohi-Yekta et al.):
//   * dependent ("DTW_D")   — one warping path over R^D points, cost is the
//     squared L2 distance between D-dimensional frames;
//   * independent ("DTW_I") — one univariate DTW per dimension, summed.
// Both are provided, together with the Sakoe-Chiba band constraint and the
// LB_Keogh lower bound used to prune nearest-neighbour scans.

#ifndef DCAM_BASELINES_DISTANCE_H_
#define DCAM_BASELINES_DISTANCE_H_

#include <limits>

#include "tensor/tensor.h"

namespace dcam {
namespace baselines {

/// Squared Euclidean (lock-step) distance between two (D, n) series.
double SquaredEuclidean(const Tensor& a, const Tensor& b);

/// Euclidean distance (sqrt of the above).
double Euclidean(const Tensor& a, const Tensor& b);

/// Univariate DTW between rows `dim` of two (D, n) series with a Sakoe-Chiba
/// band of half-width `band` (band < 0 means unconstrained). Returns the
/// summed squared pointwise costs along the optimal path. `early_abandon`:
/// if every cell of a row exceeds it, returns +inf immediately.
double DtwUnivariate(const Tensor& a, const Tensor& b, int64_t dim,
                     int64_t band,
                     double early_abandon =
                         std::numeric_limits<double>::infinity());

/// Dimension-independent DTW: sum of per-dimension univariate DTWs.
double DtwIndependent(const Tensor& a, const Tensor& b, int64_t band,
                      double early_abandon =
                          std::numeric_limits<double>::infinity());

/// Dimension-dependent DTW: single path over D-dimensional frames.
double DtwDependent(const Tensor& a, const Tensor& b, int64_t band,
                    double early_abandon =
                        std::numeric_limits<double>::infinity());

/// LB_Keogh lower bound for the dependent DTW between (D, n) series under a
/// Sakoe-Chiba band: per-dimension envelope bound summed over dimensions.
/// Guaranteed <= DtwDependent(a, b, band) and <= DtwIndependent(a, b, band).
double LbKeogh(const Tensor& query, const Tensor& candidate, int64_t band);

}  // namespace baselines
}  // namespace dcam

#endif  // DCAM_BASELINES_DISTANCE_H_
