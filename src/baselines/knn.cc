#include "baselines/knn.h"

#include <algorithm>
#include <limits>
#include <map>
#include <numeric>

#include "baselines/distance.h"
#include "util/parallel.h"

namespace dcam {
namespace baselines {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}

std::string MetricName(Metric metric) {
  switch (metric) {
    case Metric::kEuclidean:
      return "ED";
    case Metric::kDtwIndependent:
      return "DTW_I";
    case Metric::kDtwDependent:
      return "DTW_D";
  }
  return "?";
}

KnnClassifier::KnnClassifier(const KnnOptions& options) : options_(options) {
  DCAM_CHECK_GE(options.k, 1);
}

void KnnClassifier::Fit(const data::Dataset& train) {
  DCAM_CHECK_GT(train.size(), 0) << "empty training set";
  DCAM_CHECK_GE(train.num_classes, 2);
  train_ = train;
  pruned_.store(0, std::memory_order_relaxed);
}

double KnnClassifier::Distance(const Tensor& a, const Tensor& b,
                               double cutoff) const {
  switch (options_.metric) {
    case Metric::kEuclidean:
      return SquaredEuclidean(a, b);
    case Metric::kDtwIndependent:
      return DtwIndependent(a, b, options_.band,
                            options_.prune ? cutoff : kInf);
    case Metric::kDtwDependent:
      return DtwDependent(a, b, options_.band,
                          options_.prune ? cutoff : kInf);
  }
  return kInf;
}

int KnnClassifier::Predict(const Tensor& series) const {
  DCAM_CHECK_GT(train_.size(), 0) << "Predict before Fit";
  DCAM_CHECK_EQ(series.rank(), 2);
  DCAM_CHECK_EQ(series.dim(0), train_.dims());
  DCAM_CHECK_EQ(series.dim(1), train_.length());

  const int64_t n_train = train_.size();
  const bool dtw = options_.metric != Metric::kEuclidean;

  // Scan order: ascending LB_Keogh for DTW metrics so the k-NN cutoff
  // tightens as early as possible; natural order otherwise.
  std::vector<int64_t> order(static_cast<size_t>(n_train));
  std::iota(order.begin(), order.end(), 0);
  std::vector<double> lb;
  if (dtw && options_.prune) {
    lb.resize(static_cast<size_t>(n_train));
    for (int64_t i = 0; i < n_train; ++i) {
      lb[static_cast<size_t>(i)] =
          LbKeogh(series, train_.Instance(i), options_.band);
    }
    std::sort(order.begin(), order.end(), [&](int64_t a, int64_t b) {
      return lb[static_cast<size_t>(a)] < lb[static_cast<size_t>(b)];
    });
  }

  // (distance, label) heap of the current k best.
  std::vector<std::pair<double, int>> best;  // sorted ascending by distance
  auto worst = [&]() {
    return best.size() < static_cast<size_t>(options_.k) ? kInf
                                                         : best.back().first;
  };
  for (int64_t idx : order) {
    const double cutoff = worst();
    if (dtw && options_.prune && lb[static_cast<size_t>(idx)] >= cutoff) {
      pruned_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    const double d = Distance(series, train_.Instance(idx), cutoff);
    if (d >= cutoff) continue;
    best.emplace_back(d, train_.y[static_cast<size_t>(idx)]);
    std::sort(best.begin(), best.end());
    if (best.size() > static_cast<size_t>(options_.k)) best.pop_back();
  }

  DCAM_CHECK(!best.empty());
  // Majority vote; ties resolved toward the nearest member of the tied
  // classes (scan `best` ascending).
  std::map<int, int> votes;
  int top_votes = 0;
  for (const auto& [dist, label] : best) {
    (void)dist;
    top_votes = std::max(top_votes, ++votes[label]);
  }
  for (const auto& [dist, label] : best) {
    (void)dist;
    if (votes[label] == top_votes) return label;
  }
  return best.front().second;
}

std::vector<int> KnnClassifier::PredictAll(const data::Dataset& test) const {
  std::vector<int> preds(static_cast<size_t>(test.size()), 0);
  ParallelFor(0, test.size(), [&](int64_t i) {
    preds[static_cast<size_t>(i)] = Predict(test.Instance(i));
  });
  return preds;
}

double KnnClassifier::Score(const data::Dataset& test) const {
  DCAM_CHECK_GT(test.size(), 0);
  const std::vector<int> preds = PredictAll(test);
  int64_t correct = 0;
  for (int64_t i = 0; i < test.size(); ++i) {
    if (preds[static_cast<size_t>(i)] == test.y[static_cast<size_t>(i)]) {
      ++correct;
    }
  }
  return static_cast<double>(correct) / static_cast<double>(test.size());
}

}  // namespace baselines
}  // namespace dcam
