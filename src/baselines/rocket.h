// ROCKET (Dempster et al., 2020) — RandOm Convolutional KErnel Transform —
// the fast non-deep classifier the paper's introduction cites among the
// recent advances ("ROCKET: exceptionally fast and accurate time series
// classification using random convolutional kernels" [14]).
//
// Pipeline: a fixed bank of random, dilated convolutional kernels (never
// trained) maps each series to two features per kernel — PPV, the proportion
// of positive convolution outputs, and the maximum output — and a ridge
// classifier separates the classes in that feature space. Multivariate
// series are handled as in the reference implementation: every kernel draws
// a random subset of the dimensions and sums their responses.
//
// ROCKET gives the repository a strong classical yardstick for the C-acc
// tables: accurate like the deep models and trained in seconds, but with no
// activation structure for CAM/dCAM to explain — classification strength
// alone does not buy explainability.

#ifndef DCAM_BASELINES_ROCKET_H_
#define DCAM_BASELINES_ROCKET_H_

#include <cstdint>
#include <vector>

#include "data/series.h"
#include "tensor/tensor.h"

namespace dcam {
namespace baselines {

struct RocketOptions {
  /// Number of random kernels (2 features each). The reference default is
  /// 10000; a few hundred already separate easy problems.
  int num_kernels = 1000;
  /// Ridge regularization strength.
  double lambda = 1.0;
  uint64_t seed = 6;
};

class RocketClassifier {
 public:
  explicit RocketClassifier(const RocketOptions& options = {});

  /// Samples the kernel bank for `train`'s shape, transforms the training
  /// set and fits the ridge head (one-vs-rest, closed form).
  void Fit(const data::Dataset& train);

  /// Predicted class of one (D, n) series.
  int Predict(const Tensor& series) const;

  std::vector<int> PredictAll(const data::Dataset& test) const;

  /// Classification accuracy over `test`.
  double Score(const data::Dataset& test) const;

  /// The 2 * num_kernels feature vector of one series (PPV and max per
  /// kernel), exposed for tests and for reuse as generic features.
  std::vector<double> Transform(const Tensor& series) const;

 private:
  struct Kernel {
    std::vector<int> channels;   // dimension indices this kernel reads
    std::vector<float> weights;  // channels.size() * length, row-major
    float bias = 0.0f;
    int length = 9;
    int dilation = 1;
    bool padding = false;
  };

  RocketOptions options_;
  std::vector<Kernel> kernels_;
  int64_t dims_ = 0;
  int64_t length_ = 0;
  int num_classes_ = 0;
  /// Ridge weights, (num_classes) x (2 * num_kernels + 1) with bias column.
  std::vector<std::vector<double>> head_;
  /// Per-feature standardization (mean, inv_std) fitted on train.
  std::vector<double> feat_mean_;
  std::vector<double> feat_inv_std_;
};

}  // namespace baselines
}  // namespace dcam

#endif  // DCAM_BASELINES_ROCKET_H_
