// k-nearest-neighbour classifier over multivariate data series — the
// classical baseline the paper's introduction cites ("k-NN classification
// (using the Euclidean or Dynamic Time Warping (DTW) distances) being a
// popular baseline method [12]").
//
// Lazy learner: Fit stores the training set; Predict scans it per query.
// DTW scans prune with LB_Keogh ordered by lower bound (the standard
// UCR-suite trick), which typically skips the large majority of full DTW
// evaluations.

#ifndef DCAM_BASELINES_KNN_H_
#define DCAM_BASELINES_KNN_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "data/series.h"
#include "tensor/tensor.h"

namespace dcam {
namespace baselines {

enum class Metric {
  kEuclidean,
  kDtwIndependent,
  kDtwDependent,
};

std::string MetricName(Metric metric);

struct KnnOptions {
  int k = 1;
  Metric metric = Metric::kEuclidean;
  /// Sakoe-Chiba half-width for the DTW metrics; < 0 = unconstrained. The
  /// UCR-suite convention of ~10% of the series length is a good default.
  int64_t band = -1;
  /// Use LB_Keogh + early abandoning to prune DTW scans.
  bool prune = true;
};

class KnnClassifier {
 public:
  explicit KnnClassifier(const KnnOptions& options = {});

  /// Stores (a reference-counted copy of) the training set.
  void Fit(const data::Dataset& train);

  /// Predicts the class of one (D, n) series by majority vote among the k
  /// nearest training instances (ties break toward the nearer neighbour).
  int Predict(const Tensor& series) const;

  /// Predicts every instance of `test`; returns predictions in order.
  std::vector<int> PredictAll(const data::Dataset& test) const;

  /// Classification accuracy over `test` (C-acc in the paper's terms).
  double Score(const data::Dataset& test) const;

  /// Number of full distance evaluations avoided by pruning since Fit
  /// (diagnostic; 0 for the Euclidean metric). Thread-safe: PredictAll
  /// increments it from worker threads.
  int64_t pruned_count() const {
    return pruned_.load(std::memory_order_relaxed);
  }

 private:
  double Distance(const Tensor& a, const Tensor& b, double cutoff) const;

  KnnOptions options_;
  data::Dataset train_;
  mutable std::atomic<int64_t> pruned_{0};
};

}  // namespace baselines
}  // namespace dcam

#endif  // DCAM_BASELINES_KNN_H_
