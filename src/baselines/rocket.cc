#include "baselines/rocket.h"

#include <algorithm>
#include <cmath>

#include "util/parallel.h"
#include "util/rng.h"

namespace dcam {
namespace baselines {
namespace {

// Solves (A + lambda I) X = B for symmetric positive definite A via Cholesky.
// A is n x n row-major and is overwritten by its factor; B is n x nrhs and
// is overwritten by the solution.
void SolveRidge(std::vector<double>* a, int n, std::vector<double>* b,
                int nrhs, double lambda) {
  std::vector<double>& A = *a;
  std::vector<double>& B = *b;
  for (int i = 0; i < n; ++i) A[static_cast<size_t>(i) * n + i] += lambda;

  // Cholesky: A = L L^T, stored in the lower triangle.
  for (int j = 0; j < n; ++j) {
    double d = A[static_cast<size_t>(j) * n + j];
    for (int k = 0; k < j; ++k) {
      const double v = A[static_cast<size_t>(j) * n + k];
      d -= v * v;
    }
    DCAM_CHECK_GT(d, 0.0) << "ridge system not positive definite";
    const double ljj = std::sqrt(d);
    A[static_cast<size_t>(j) * n + j] = ljj;
    for (int i = j + 1; i < n; ++i) {
      double s = A[static_cast<size_t>(i) * n + j];
      for (int k = 0; k < j; ++k) {
        s -= A[static_cast<size_t>(i) * n + k] *
             A[static_cast<size_t>(j) * n + k];
      }
      A[static_cast<size_t>(i) * n + j] = s / ljj;
    }
  }
  // Forward then backward substitution per right-hand side.
  for (int r = 0; r < nrhs; ++r) {
    for (int i = 0; i < n; ++i) {
      double s = B[static_cast<size_t>(i) * nrhs + r];
      for (int k = 0; k < i; ++k) {
        s -= A[static_cast<size_t>(i) * n + k] *
             B[static_cast<size_t>(k) * nrhs + r];
      }
      B[static_cast<size_t>(i) * nrhs + r] =
          s / A[static_cast<size_t>(i) * n + i];
    }
    for (int i = n - 1; i >= 0; --i) {
      double s = B[static_cast<size_t>(i) * nrhs + r];
      for (int k = i + 1; k < n; ++k) {
        s -= A[static_cast<size_t>(k) * n + i] *
             B[static_cast<size_t>(k) * nrhs + r];
      }
      B[static_cast<size_t>(i) * nrhs + r] =
          s / A[static_cast<size_t>(i) * n + i];
    }
  }
}

}  // namespace

RocketClassifier::RocketClassifier(const RocketOptions& options)
    : options_(options) {
  DCAM_CHECK_GE(options.num_kernels, 1);
  DCAM_CHECK_GT(options.lambda, 0.0);
}

void RocketClassifier::Fit(const data::Dataset& train) {
  DCAM_CHECK_GT(train.size(), 0);
  DCAM_CHECK_GE(train.num_classes, 2);
  dims_ = train.dims();
  length_ = train.length();
  num_classes_ = train.num_classes;

  // --- sample the kernel bank (reference hyperparameters) ---
  Rng rng(options_.seed);
  kernels_.clear();
  kernels_.reserve(static_cast<size_t>(options_.num_kernels));
  const int kLengths[3] = {7, 9, 11};
  for (int k = 0; k < options_.num_kernels; ++k) {
    Kernel kern;
    kern.length = kLengths[rng.UniformInt(3)];
    // Random channel subset: |subset| = 2^U[0, log2(D)] rounded, per the
    // multivariate reference implementation.
    const double max_exp =
        std::log2(static_cast<double>(std::max<int64_t>(dims_, 1)));
    const int num_ch = std::max(
        1, static_cast<int>(std::round(std::pow(2.0, rng.Uniform(0, max_exp)))));
    std::vector<int> all(static_cast<size_t>(dims_));
    for (int64_t i = 0; i < dims_; ++i) all[static_cast<size_t>(i)] =
        static_cast<int>(i);
    rng.Shuffle(&all);
    kern.channels.assign(all.begin(), all.begin() + num_ch);

    kern.weights.resize(kern.channels.size() * static_cast<size_t>(kern.length));
    // N(0,1) weights, mean-centered per channel.
    for (size_t c = 0; c < kern.channels.size(); ++c) {
      double mean = 0.0;
      for (int i = 0; i < kern.length; ++i) {
        const double w = rng.Normal();
        kern.weights[c * static_cast<size_t>(kern.length) +
                     static_cast<size_t>(i)] = static_cast<float>(w);
        mean += w;
      }
      mean /= kern.length;
      for (int i = 0; i < kern.length; ++i) {
        kern.weights[c * static_cast<size_t>(kern.length) +
                     static_cast<size_t>(i)] -= static_cast<float>(mean);
      }
    }
    kern.bias = static_cast<float>(rng.Uniform(-1.0, 1.0));
    const double max_dil_exp = std::log2(
        static_cast<double>(length_ - 1) / static_cast<double>(kern.length - 1));
    kern.dilation = static_cast<int>(
        std::pow(2.0, rng.Uniform(0.0, std::max(0.0, max_dil_exp))));
    kern.padding = rng.UniformInt(2) == 0;
    kernels_.push_back(std::move(kern));
  }

  // --- transform the training set ---
  const int64_t n_inst = train.size();
  const int num_feat = 2 * options_.num_kernels;
  std::vector<std::vector<double>> feats(static_cast<size_t>(n_inst));
  ParallelFor(0, n_inst, [&](int64_t i) {
    feats[static_cast<size_t>(i)] = Transform(train.Instance(i));
  });

  // Standardize features (ridge is scale-sensitive).
  feat_mean_.assign(static_cast<size_t>(num_feat), 0.0);
  feat_inv_std_.assign(static_cast<size_t>(num_feat), 1.0);
  for (const auto& f : feats) {
    for (int j = 0; j < num_feat; ++j) feat_mean_[static_cast<size_t>(j)] += f[static_cast<size_t>(j)];
  }
  for (double& m : feat_mean_) m /= static_cast<double>(n_inst);
  std::vector<double> var(static_cast<size_t>(num_feat), 0.0);
  for (const auto& f : feats) {
    for (int j = 0; j < num_feat; ++j) {
      const double d = f[static_cast<size_t>(j)] - feat_mean_[static_cast<size_t>(j)];
      var[static_cast<size_t>(j)] += d * d;
    }
  }
  for (int j = 0; j < num_feat; ++j) {
    const double v = var[static_cast<size_t>(j)] / static_cast<double>(n_inst);
    feat_inv_std_[static_cast<size_t>(j)] = v > 1e-12 ? 1.0 / std::sqrt(v) : 0.0;
  }

  // --- ridge regression, one-vs-rest with targets +/-1 ---
  // Solve in the dual when instances < features: (G + lambda I) alpha = Y
  // with G = Z Z^T, then W = Z^T alpha. Z is the standardized feature matrix.
  std::vector<std::vector<double>> z(static_cast<size_t>(n_inst));
  for (int64_t i = 0; i < n_inst; ++i) {
    z[static_cast<size_t>(i)].resize(static_cast<size_t>(num_feat));
    for (int j = 0; j < num_feat; ++j) {
      z[static_cast<size_t>(i)][static_cast<size_t>(j)] =
          (feats[static_cast<size_t>(i)][static_cast<size_t>(j)] -
           feat_mean_[static_cast<size_t>(j)]) *
          feat_inv_std_[static_cast<size_t>(j)];
    }
  }
  const int n = static_cast<int>(n_inst);
  std::vector<double> gram(static_cast<size_t>(n) * n, 0.0);
  for (int i = 0; i < n; ++i) {
    for (int j = i; j < n; ++j) {
      double s = 0.0;
      for (int f = 0; f < num_feat; ++f) {
        s += z[static_cast<size_t>(i)][static_cast<size_t>(f)] *
             z[static_cast<size_t>(j)][static_cast<size_t>(f)];
      }
      gram[static_cast<size_t>(i) * n + j] = s;
      gram[static_cast<size_t>(j) * n + i] = s;
    }
  }
  std::vector<double> targets(static_cast<size_t>(n) * num_classes_, 0.0);
  for (int i = 0; i < n; ++i) {
    for (int c = 0; c < num_classes_; ++c) {
      targets[static_cast<size_t>(i) * num_classes_ + c] =
          train.y[static_cast<size_t>(i)] == c ? 1.0 : -1.0;
    }
  }
  SolveRidge(&gram, n, &targets, num_classes_, options_.lambda);

  head_.assign(static_cast<size_t>(num_classes_),
               std::vector<double>(static_cast<size_t>(num_feat) + 1, 0.0));
  for (int c = 0; c < num_classes_; ++c) {
    for (int f = 0; f < num_feat; ++f) {
      double w = 0.0;
      for (int i = 0; i < n; ++i) {
        w += targets[static_cast<size_t>(i) * num_classes_ + c] *
             z[static_cast<size_t>(i)][static_cast<size_t>(f)];
      }
      head_[static_cast<size_t>(c)][static_cast<size_t>(f)] = w;
    }
    // Features are centered, so the intercept is the class-target mean.
    double b = 0.0;
    for (int i = 0; i < n; ++i) {
      b += train.y[static_cast<size_t>(i)] == c ? 1.0 : -1.0;
    }
    head_[static_cast<size_t>(c)].back() = b / n;
  }
}

std::vector<double> RocketClassifier::Transform(const Tensor& series) const {
  DCAM_CHECK(!kernels_.empty()) << "Transform before Fit";
  DCAM_CHECK_EQ(series.rank(), 2);
  DCAM_CHECK_EQ(series.dim(0), dims_);
  DCAM_CHECK_EQ(series.dim(1), length_);

  std::vector<double> feats;
  feats.reserve(kernels_.size() * 2);
  for (const Kernel& k : kernels_) {
    const int span = (k.length - 1) * k.dilation;
    const int pad = k.padding ? span / 2 : 0;
    const int64_t out_len = length_ - span + 2 * pad;
    int64_t positives = 0;
    double maxv = -1e30;
    for (int64_t o = 0; o < out_len; ++o) {
      const int64_t start = o - pad;
      double s = k.bias;
      for (size_t c = 0; c < k.channels.size(); ++c) {
        const float* row = series.data() +
                           static_cast<int64_t>(k.channels[c]) * length_;
        const float* w = k.weights.data() + c * static_cast<size_t>(k.length);
        for (int i = 0; i < k.length; ++i) {
          const int64_t t = start + static_cast<int64_t>(i) * k.dilation;
          if (t < 0 || t >= length_) continue;
          s += static_cast<double>(w[i]) * row[t];
        }
      }
      if (s > 0.0) ++positives;
      maxv = std::max(maxv, s);
    }
    feats.push_back(out_len > 0 ? static_cast<double>(positives) /
                                      static_cast<double>(out_len)
                                : 0.0);
    feats.push_back(out_len > 0 ? maxv : 0.0);
  }
  return feats;
}

int RocketClassifier::Predict(const Tensor& series) const {
  DCAM_CHECK(!head_.empty()) << "Predict before Fit";
  const std::vector<double> f = Transform(series);
  int best = 0;
  double best_score = -1e300;
  for (int c = 0; c < num_classes_; ++c) {
    const auto& w = head_[static_cast<size_t>(c)];
    double s = w.back();
    for (size_t j = 0; j < f.size(); ++j) {
      s += w[j] * (f[j] - feat_mean_[j]) * feat_inv_std_[j];
    }
    if (s > best_score) {
      best_score = s;
      best = c;
    }
  }
  return best;
}

std::vector<int> RocketClassifier::PredictAll(
    const data::Dataset& test) const {
  std::vector<int> preds(static_cast<size_t>(test.size()), 0);
  ParallelFor(0, test.size(), [&](int64_t i) {
    preds[static_cast<size_t>(i)] = Predict(test.Instance(i));
  });
  return preds;
}

double RocketClassifier::Score(const data::Dataset& test) const {
  DCAM_CHECK_GT(test.size(), 0);
  const std::vector<int> preds = PredictAll(test);
  int64_t correct = 0;
  for (int64_t i = 0; i < test.size(); ++i) {
    if (preds[static_cast<size_t>(i)] == test.y[static_cast<size_t>(i)]) {
      ++correct;
    }
  }
  return static_cast<double>(correct) / static_cast<double>(test.size());
}

}  // namespace baselines
}  // namespace dcam
