#include "baselines/distance.h"

#include <algorithm>
#include <cmath>
#include <vector>

namespace dcam {
namespace baselines {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

void CheckPair(const Tensor& a, const Tensor& b) {
  DCAM_CHECK_EQ(a.rank(), 2);
  DCAM_CHECK_EQ(b.rank(), 2);
  DCAM_CHECK_EQ(a.dim(0), b.dim(0));
  DCAM_CHECK_EQ(a.dim(1), b.dim(1));
}

// Rolling two-row DTW over a cost functor; cost(i, j) is the squared local
// distance between frame i of the query and frame j of the candidate.
template <typename CostFn>
double DtwCore(int64_t n, int64_t band, double early_abandon, CostFn cost) {
  const int64_t w = band < 0 ? n : std::max<int64_t>(band, 0);
  std::vector<double> prev(static_cast<size_t>(n), kInf);
  std::vector<double> cur(static_cast<size_t>(n), kInf);
  for (int64_t i = 0; i < n; ++i) {
    std::fill(cur.begin(), cur.end(), kInf);
    const int64_t j_lo = std::max<int64_t>(0, i - w);
    const int64_t j_hi = std::min<int64_t>(n - 1, i + w);
    double row_min = kInf;
    for (int64_t j = j_lo; j <= j_hi; ++j) {
      const double c = cost(i, j);
      double best;
      if (i == 0 && j == 0) {
        best = 0.0;
      } else {
        best = kInf;
        if (i > 0) best = std::min(best, prev[static_cast<size_t>(j)]);
        if (j > 0) best = std::min(best, cur[static_cast<size_t>(j - 1)]);
        if (i > 0 && j > 0) {
          best = std::min(best, prev[static_cast<size_t>(j - 1)]);
        }
      }
      const double v = c + best;
      cur[static_cast<size_t>(j)] = v;
      row_min = std::min(row_min, v);
    }
    if (row_min > early_abandon) return kInf;
    std::swap(prev, cur);
  }
  return prev[static_cast<size_t>(n - 1)];
}

}  // namespace

double SquaredEuclidean(const Tensor& a, const Tensor& b) {
  CheckPair(a, b);
  const float* pa = a.data();
  const float* pb = b.data();
  double s = 0.0;
  for (int64_t i = 0; i < a.size(); ++i) {
    const double d = static_cast<double>(pa[i]) - pb[i];
    s += d * d;
  }
  return s;
}

double Euclidean(const Tensor& a, const Tensor& b) {
  return std::sqrt(SquaredEuclidean(a, b));
}

double DtwUnivariate(const Tensor& a, const Tensor& b, int64_t dim,
                     int64_t band, double early_abandon) {
  CheckPair(a, b);
  DCAM_CHECK_GE(dim, 0);
  DCAM_CHECK_LT(dim, a.dim(0));
  const int64_t n = a.dim(1);
  const float* ra = a.data() + dim * n;
  const float* rb = b.data() + dim * n;
  return DtwCore(n, band, early_abandon, [&](int64_t i, int64_t j) {
    const double d = static_cast<double>(ra[i]) - rb[j];
    return d * d;
  });
}

double DtwIndependent(const Tensor& a, const Tensor& b, int64_t band,
                      double early_abandon) {
  CheckPair(a, b);
  const int64_t d = a.dim(0);
  double total = 0.0;
  for (int64_t j = 0; j < d; ++j) {
    total += DtwUnivariate(a, b, j, band, early_abandon - total);
    if (total > early_abandon) return kInf;
  }
  return total;
}

double DtwDependent(const Tensor& a, const Tensor& b, int64_t band,
                    double early_abandon) {
  CheckPair(a, b);
  const int64_t d = a.dim(0);
  const int64_t n = a.dim(1);
  const float* pa = a.data();
  const float* pb = b.data();
  return DtwCore(n, band, early_abandon, [&](int64_t i, int64_t j) {
    double c = 0.0;
    for (int64_t k = 0; k < d; ++k) {
      const double diff = static_cast<double>(pa[k * n + i]) - pb[k * n + j];
      c += diff * diff;
    }
    return c;
  });
}

double LbKeogh(const Tensor& query, const Tensor& candidate, int64_t band) {
  CheckPair(query, candidate);
  const int64_t d = query.dim(0);
  const int64_t n = query.dim(1);
  const int64_t w = band < 0 ? n : std::max<int64_t>(band, 0);
  double total = 0.0;
  for (int64_t k = 0; k < d; ++k) {
    const float* q = query.data() + k * n;
    const float* c = candidate.data() + k * n;
    for (int64_t i = 0; i < n; ++i) {
      const int64_t lo = std::max<int64_t>(0, i - w);
      const int64_t hi = std::min<int64_t>(n - 1, i + w);
      float u = c[lo];
      float l = c[lo];
      for (int64_t j = lo + 1; j <= hi; ++j) {
        u = std::max(u, c[j]);
        l = std::min(l, c[j]);
      }
      if (q[i] > u) {
        const double diff = static_cast<double>(q[i]) - u;
        total += diff * diff;
      } else if (q[i] < l) {
        const double diff = static_cast<double>(q[i]) - l;
        total += diff * diff;
      }
    }
  }
  return total;
}

}  // namespace baselines
}  // namespace dcam
