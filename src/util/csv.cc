#include "util/csv.h"

#include <algorithm>
#include <cstdio>

#include "util/check.h"

namespace dcam {

std::string FormatDouble(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return std::string(buf);
}

TableWriter::TableWriter(std::vector<std::string> header)
    : header_(std::move(header)) {
  DCAM_CHECK(!header_.empty());
}

void TableWriter::BeginRow() { rows_.emplace_back(); }

void TableWriter::Cell(const std::string& value) {
  DCAM_CHECK(!rows_.empty()) << "call BeginRow() first";
  DCAM_CHECK_LT(rows_.back().size(), header_.size());
  rows_.back().push_back(value);
}

void TableWriter::Cell(const char* value) { Cell(std::string(value)); }

void TableWriter::Cell(double value, int precision) {
  Cell(FormatDouble(value, precision));
}

void TableWriter::Cell(int64_t value) { Cell(std::to_string(value)); }

void TableWriter::Cell(int value) { Cell(std::to_string(value)); }

void TableWriter::WriteCsv(std::ostream& os) const {
  for (size_t i = 0; i < header_.size(); ++i) {
    if (i) os << ',';
    os << header_[i];
  }
  os << '\n';
  for (const auto& row : rows_) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i) os << ',';
      os << row[i];
    }
    os << '\n';
  }
}

void TableWriter::WriteAligned(std::ostream& os) const {
  std::vector<size_t> widths(header_.size(), 0);
  for (size_t i = 0; i < header_.size(); ++i) widths[i] = header_[i].size();
  for (const auto& row : rows_) {
    for (size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (size_t i = 0; i < row.size(); ++i) {
      os << row[i];
      if (i + 1 < row.size()) {
        os << std::string(widths[i] - row[i].size() + 2, ' ');
      }
    }
    os << '\n';
  };
  emit_row(header_);
  for (const auto& row : rows_) emit_row(row);
}

}  // namespace dcam
