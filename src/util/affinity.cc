#include "util/affinity.h"

#include <cstdlib>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace dcam {

std::vector<int> ParseCpuList(const std::string& spec) {
  std::vector<int> cpus;
  size_t pos = 0;
  while (pos < spec.size()) {
    size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    const std::string token = spec.substr(pos, comma - pos);
    pos = comma + 1;
    if (token.empty()) return {};
    const size_t dash = token.find('-');
    int lo = 0, hi = 0;
    char* end = nullptr;
    if (dash == std::string::npos) {
      lo = hi = static_cast<int>(std::strtol(token.c_str(), &end, 10));
      if (end == token.c_str() || *end != '\0') return {};
    } else {
      const std::string a = token.substr(0, dash);
      const std::string b = token.substr(dash + 1);
      if (a.empty() || b.empty()) return {};
      lo = static_cast<int>(std::strtol(a.c_str(), &end, 10));
      if (end == a.c_str() || *end != '\0') return {};
      hi = static_cast<int>(std::strtol(b.c_str(), &end, 10));
      if (end == b.c_str() || *end != '\0') return {};
    }
    if (lo < 0 || hi < lo) return {};
    for (int c = lo; c <= hi; ++c) cpus.push_back(c);
  }
  // Sorted + deduplicated so "0,2,0-1" and "0-2" configure identically.
  std::vector<int> out;
  for (int c : cpus) {
    bool seen = false;
    for (int o : out) {
      if (o == c) {
        seen = true;
        break;
      }
    }
    if (!seen) out.push_back(c);
  }
  for (size_t i = 1; i < out.size(); ++i) {
    for (size_t j = i; j > 0 && out[j] < out[j - 1]; --j) {
      std::swap(out[j], out[j - 1]);
    }
  }
  return out;
}

const std::vector<int>& ConfiguredCoreSet() {
  static const std::vector<int>* set = [] {
    const char* env = std::getenv("DCAM_CPU_SET");
    return new std::vector<int>(env != nullptr ? ParseCpuList(env)
                                               : std::vector<int>());
  }();
  return *set;
}

#if defined(__linux__)

bool AffinitySupported() { return true; }

bool PinCurrentThreadToSet(const std::vector<int>& cpus) {
  if (cpus.empty()) return false;
  cpu_set_t set;
  CPU_ZERO(&set);
  bool any = false;
  for (int cpu : cpus) {
    if (cpu >= 0 && cpu < CPU_SETSIZE) {
      CPU_SET(cpu, &set);
      any = true;
    }
  }
  if (!any) return false;
  return pthread_setaffinity_np(pthread_self(), sizeof(set), &set) == 0;
}

#else  // !__linux__

bool AffinitySupported() { return false; }

bool PinCurrentThreadToSet(const std::vector<int>& cpus) {
  (void)cpus;
  return false;
}

#endif  // __linux__

bool PinCurrentThreadToCpu(int cpu) {
  return PinCurrentThreadToSet(std::vector<int>{cpu});
}

}  // namespace dcam
