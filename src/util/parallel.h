// A minimal persistent thread pool with a parallel-for primitive.
//
// Training convolutional networks on CPU dominates the runtime of every
// experiment in this repository; the batch dimension and the k-permutation
// loop of dCAM are embarrassingly parallel, so a static-partition
// parallel-for recovers most of the available speedup without the complexity
// of work stealing.

#ifndef DCAM_UTIL_PARALLEL_H_
#define DCAM_UTIL_PARALLEL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace dcam {

/// Fixed-size worker pool. One global instance (see GlobalPool()) is shared
/// by the whole library; nested ParallelFor calls degrade to serial execution
/// on the calling thread rather than deadlocking.
class ThreadPool {
 public:
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return static_cast<int>(workers_.size()) + 1; }

  /// Runs fn(i) for i in [begin, end). Blocks until all iterations finish.
  /// The calling thread participates. Safe to call with begin >= end.
  void ParallelFor(int64_t begin, int64_t end,
                   const std::function<void(int64_t)>& fn);

 private:
  struct Task {
    int64_t begin = 0;
    int64_t end = 0;
    const std::function<void(int64_t)>* fn = nullptr;
    std::atomic<int64_t>* next = nullptr;
    std::atomic<int>* remaining = nullptr;
  };

  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::condition_variable done_cv_;
  Task task_;
  uint64_t epoch_ = 0;
  bool shutdown_ = false;
  int active_ = 0;
};

/// Process-wide pool sized to the hardware concurrency (minimum 1 worker).
ThreadPool& GlobalPool();

/// Convenience wrapper over GlobalPool().ParallelFor. Falls back to a plain
/// loop when the range is tiny or when invoked from inside another
/// ParallelFor (detected via a thread-local flag).
void ParallelFor(int64_t begin, int64_t end,
                 const std::function<void(int64_t)>& fn);

}  // namespace dcam

#endif  // DCAM_UTIL_PARALLEL_H_
