// Morsel-driven work scheduler with a persistent worker pool.
//
// Training convolutional networks and the k-permutation loop of dCAM are
// embarrassingly parallel, but the granularity varies wildly: a GEMM block
// grid has thousands of cheap tiles, the engine's scatter has (groups × D)
// fine-grained rows, a batch forward has a handful of fat instances. The
// scheduler therefore hands out *morsels* — contiguous [lo, hi) chunks of
// the iteration range, claimed by one atomic fetch-add per chunk (in the
// style of Leis et al.'s morsel-driven parallelism) — instead of one atomic
// per iteration. Chunk size is the `grain`: callers pick it, or pass
// kAdaptiveGrain to size chunks so every participant claims a few (good
// locality, bounded imbalance, negligible claim traffic).
//
// Every participating thread carries a stable small integer worker id,
// passed to the morsel body. Pool workers own ids [0, workers); external
// caller threads (which always participate in their own calls, so every
// call makes progress even with zero workers) lease the next free id on
// first use and keep it for the pool's lifetime. Ids index per-worker state;
// pair them with util/arena.h's ThisThreadArena for worker-local scratch.
//
// The pool accepts any number of concurrent external callers: each call
// publishes a stack-owned task context on a shared list and workers pick the
// live task with the fewest helpers (least-loaded), so two replica
// schedulers issuing morsels at the same time split the workers instead of
// serializing. A caller may install an *affinity hint* (its preferred worker
// id) — among equally-loaded tasks, workers prefer tasks hinted at them,
// which keeps one ExplainService shard's batches on the same workers (and
// with pinning, the same cores) round after round.
//
// Core pinning: construct with Options::core_set (or export DCAM_CPU_SET for
// the global pool) and workers pin themselves round-robin over the set via
// util/affinity.h. Pinning is best-effort and changes placement only, never
// results. A pinned pool is also *sized* by its core set, so width-derived
// heuristics (DcamEngine's batch) follow the configured worker set rather
// than hardware concurrency.
//
// Nested calls (a morsel body issuing another ParallelFor/ParallelMorsel via
// the free functions) degrade to serial chunked execution on the calling
// thread rather than deadlocking, exactly as before.

#ifndef DCAM_UTIL_PARALLEL_H_
#define DCAM_UTIL_PARALLEL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "util/function_ref.h"

namespace dcam {

/// Fixed-size worker pool. One global instance (see GlobalPool()) is shared
/// by the whole library; nested free-function calls degrade to serial
/// execution on the calling thread rather than deadlocking, and any number
/// of external threads may call in concurrently.
class ThreadPool {
 public:
  /// Pass as `grain` to let the pool size chunks from the range and worker
  /// count (a few chunks per participant).
  static constexpr int64_t kAdaptiveGrain = 0;

  struct Options {
    /// Worker-set width (pool threads + the caller). 0 derives it: the core
    /// set's size when one is configured, else hardware concurrency.
    int num_threads = 0;
    /// Non-empty: workers pin themselves round-robin over these cpu ids
    /// (best-effort, see util/affinity.h). The global pool takes this from
    /// DCAM_CPU_SET.
    std::vector<int> core_set;
  };

  explicit ThreadPool(int num_threads);
  explicit ThreadPool(Options options);

  /// Stops the workers, then waits for any thread still inside a call to
  /// leave (such calls finish serially on their caller) before the members
  /// are destroyed.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return static_cast<int>(workers_.size()) + 1; }

  /// Ids handed out so far: pool workers plus every distinct caller thread
  /// seen. Every worker id passed to a morsel body is in [0, worker_slots()).
  int worker_slots() const;

  /// The chunk size kAdaptiveGrain resolves to for a range of `range`
  /// iterations (a few chunks per participant, minimum 1).
  int64_t AdaptiveGrainFor(int64_t range) const;

  /// Runs fn(worker_id, lo, hi) over disjoint chunks covering [begin, end).
  /// Blocks until the whole range is done. Chunks are contiguous, at most
  /// `grain` long (callers may size per-chunk scratch by it), and each is
  /// executed exactly once; `worker_id` is the stable id of the executing
  /// thread. The calling thread participates. Safe for any number of
  /// concurrent callers; safe with begin >= end (no-op).
  void ParallelMorsel(int64_t begin, int64_t end, int64_t grain,
                      FunctionRef<void(int, int64_t, int64_t)> fn);

  /// Legacy per-iteration form: runs fn(i) for i in [begin, end). A thin
  /// shim over a grain-1 morsel — identical claiming order and therefore
  /// identical behavior to the historical per-iteration pool.
  void ParallelFor(int64_t begin, int64_t end, FunctionRef<void(int64_t)> fn);

 private:
  // One in-flight call. Lives on the caller's stack; the caller removes it
  // from tasks_ once the counter is exhausted and waits for helpers
  // (guarded by mu_) to drop to zero before returning.
  struct TaskContext {
    TaskContext(int64_t begin, int64_t end_, int64_t grain_,
                FunctionRef<void(int, int64_t, int64_t)> fn_, int hint_)
        : end(end_), grain(grain_), fn(fn_), hint(hint_), next(begin) {}

    const int64_t end;
    const int64_t grain;
    const FunctionRef<void(int, int64_t, int64_t)> fn;
    const int hint;  // preferred worker id (-1: none); see affinity hints
    std::atomic<int64_t> next;
    int helpers = 0;  // workers currently running chunks (guarded by mu_)

    bool exhausted() const {
      return next.load(std::memory_order_relaxed) >= end;
    }
  };

  void WorkerLoop(int worker_id);
  // Claims and runs chunks of `ctx` until the range is exhausted.
  static void RunChunks(TaskContext* ctx, int worker_id);
  // The calling thread's stable id in this pool (mu_ held; leases one on
  // first use).
  int CallerIdLocked();

  const Options options_;
  const uint64_t generation_;  // distinguishes pools across address reuse
  std::vector<std::thread> workers_;
  mutable std::mutex mu_;
  std::condition_variable cv_;       // worker wake-up
  std::condition_variable done_cv_;  // caller / destructor wake-up
  std::vector<TaskContext*> tasks_;  // live calls (guarded by mu_)
  std::unordered_map<std::thread::id, int> caller_ids_;  // stable leases
  int next_caller_id_;               // == workers_.size() at construction
  int callers_ = 0;                  // threads inside a call
  bool shutdown_ = false;
};

/// Process-wide pool. Sized and pinned by DCAM_CPU_SET when set, else sized
/// to the hardware concurrency (minimum 1 worker).
ThreadPool& GlobalPool();

/// Convenience wrappers over GlobalPool(). Both fall back to serial
/// execution on the calling thread when invoked from inside another parallel
/// region (detected via a thread-local flag); ParallelFor additionally skips
/// the pool for single-iteration ranges.
void ParallelFor(int64_t begin, int64_t end, FunctionRef<void(int64_t)> fn);
void ParallelMorsel(int64_t begin, int64_t end, int64_t grain,
                    FunctionRef<void(int, int64_t, int64_t)> fn);

/// Installs this thread's affinity hint: subsequent calls it makes carry the
/// hinted worker id, and equally-loaded tasks hinted at a worker win that
/// worker's pick. ExplainService shard s hints at worker (s mod width) so a
/// shard's batches keep landing on the same workers. -1 clears the hint.
void SetParallelAffinityHint(int worker_id);

/// The ambient worker id of the calling thread: its id while executing a
/// morsel body (nested serial calls inherit it), 0 for threads that never
/// entered a pool. Only meaningful relative to the pool currently executing.
int CurrentWorkerId();

}  // namespace dcam

#endif  // DCAM_UTIL_PARALLEL_H_
