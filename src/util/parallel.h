// A minimal persistent thread pool with a parallel-for primitive.
//
// Training convolutional networks on CPU dominates the runtime of every
// experiment in this repository; the batch dimension and the k-permutation
// loop of dCAM are embarrassingly parallel, so a static-partition
// parallel-for recovers most of the available speedup without the complexity
// of work stealing.
//
// The pool accepts any number of concurrent external callers: each
// ParallelFor call owns a private task context (iteration counter + helper
// count) that lives on the caller's stack and is published on a shared task
// list. Workers pick the live task with the fewest helpers (least-loaded),
// so two replica schedulers issuing ParallelFor at the same time split the
// workers between them instead of serializing on a single task slot. The
// caller always participates in its own iteration range, so every call makes
// progress even when all workers are busy elsewhere (or after shutdown).

#ifndef DCAM_UTIL_PARALLEL_H_
#define DCAM_UTIL_PARALLEL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace dcam {

/// Fixed-size worker pool. One global instance (see GlobalPool()) is shared
/// by the whole library; nested ParallelFor calls degrade to serial execution
/// on the calling thread rather than deadlocking, and any number of external
/// threads may call ParallelFor concurrently.
class ThreadPool {
 public:
  explicit ThreadPool(int num_threads);

  /// Stops the workers, then waits for any thread still inside ParallelFor
  /// to leave (such calls finish serially on their caller) before the
  /// members are destroyed.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return static_cast<int>(workers_.size()) + 1; }

  /// Runs fn(i) for i in [begin, end). Blocks until all iterations finish.
  /// The calling thread participates. Safe to call with begin >= end, and
  /// safe to call from multiple threads concurrently — each call's
  /// iterations are disjoint from every other call's.
  void ParallelFor(int64_t begin, int64_t end,
                   const std::function<void(int64_t)>& fn);

 private:
  // One in-flight ParallelFor. Lives on the caller's stack; the caller
  // removes it from tasks_ once the counter is exhausted and waits for
  // helpers_ (guarded by mu_) to drop to zero before returning.
  struct TaskContext {
    int64_t end = 0;
    const std::function<void(int64_t)>* fn = nullptr;
    std::atomic<int64_t> next{0};
    int helpers = 0;  // workers currently running iterations (guarded by mu_)

    bool exhausted() const {
      return next.load(std::memory_order_relaxed) >= end;
    }
  };

  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable cv_;       // worker wake-up
  std::condition_variable done_cv_;  // caller / destructor wake-up
  std::vector<TaskContext*> tasks_;  // live ParallelFor calls (guarded by mu_)
  int callers_ = 0;                  // threads inside ParallelFor
  bool shutdown_ = false;
};

/// Process-wide pool sized to the hardware concurrency (minimum 1 worker).
ThreadPool& GlobalPool();

/// Convenience wrapper over GlobalPool().ParallelFor. Falls back to a plain
/// loop when the range is tiny or when invoked from inside another
/// ParallelFor (detected via a thread-local flag).
void ParallelFor(int64_t begin, int64_t end,
                 const std::function<void(int64_t)>& fn);

}  // namespace dcam

#endif  // DCAM_UTIL_PARALLEL_H_
