#include "util/parallel.h"

#include <algorithm>

#include "util/affinity.h"

namespace dcam {
namespace {

// Set while the thread executes inside a parallel region (worker loop or a
// participating caller); free-function calls seeing it degrade to serial.
thread_local bool inside_parallel_region = false;

// The id of the morsel the thread is currently running (see
// CurrentWorkerId); nested serial calls inherit it.
thread_local int ambient_worker_id = 0;

// This thread's task-affinity hint, stamped onto the calls it publishes.
thread_local int caller_affinity_hint = -1;

// Caller-id lease cache: re-entering the same pool skips the map lookup.
// The generation guards against a destroyed pool's address being reused.
struct CachedLease {
  const void* pool = nullptr;
  uint64_t generation = 0;
  int id = -1;
};
thread_local CachedLease cached_lease;

uint64_t NextPoolGeneration() {
  static std::atomic<uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

// Chunks per participant the adaptive grain aims for: enough slack to
// rebalance when chunk costs vary, few enough that claim traffic and
// per-chunk dispatch stay negligible.
constexpr int64_t kAdaptiveChunksPerThread = 8;

}  // namespace

ThreadPool::ThreadPool(int num_threads)
    : ThreadPool([num_threads] {
        Options o;
        o.num_threads = num_threads;
        return o;
      }()) {}

ThreadPool::ThreadPool(Options options)
    : options_(std::move(options)), generation_(NextPoolGeneration()) {
  int n = options_.num_threads;
  if (n <= 0) {
    n = options_.core_set.empty()
            ? static_cast<int>(std::thread::hardware_concurrency())
            : static_cast<int>(options_.core_set.size());
    if (n <= 0) n = 4;
  }
  const int workers = n > 1 ? n - 1 : 0;
  next_caller_id_ = workers;
  workers_.reserve(static_cast<size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
  // A call racing the destructor finishes serially on its caller (the
  // workers are gone); wait for it to leave before the mutex dies.
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [&] { return callers_ == 0; });
}

int ThreadPool::worker_slots() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_caller_id_;
}

int64_t ThreadPool::AdaptiveGrainFor(int64_t range) const {
  const int64_t target = kAdaptiveChunksPerThread * num_threads();
  return std::max<int64_t>(1, range / target);
}

int ThreadPool::CallerIdLocked() {
  if (cached_lease.pool == this && cached_lease.generation == generation_) {
    return cached_lease.id;
  }
  auto it = caller_ids_.find(std::this_thread::get_id());
  if (it == caller_ids_.end()) {
    it = caller_ids_.emplace(std::this_thread::get_id(), next_caller_id_++)
             .first;
  }
  cached_lease = CachedLease{this, generation_, it->second};
  return it->second;
}

void ThreadPool::RunChunks(TaskContext* ctx, int worker_id) {
  int64_t lo;
  while ((lo = ctx->next.fetch_add(ctx->grain, std::memory_order_relaxed)) <
         ctx->end) {
    const int64_t hi = std::min(lo + ctx->grain, ctx->end);
    ctx->fn(worker_id, lo, hi);
  }
}

void ThreadPool::WorkerLoop(int worker_id) {
  inside_parallel_region = true;
  ambient_worker_id = worker_id;
  if (!options_.core_set.empty()) {
    PinCurrentThreadToCpu(
        options_.core_set[static_cast<size_t>(worker_id) %
                          options_.core_set.size()]);
  }
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    cv_.wait(lock, [&] { return shutdown_ || !tasks_.empty(); });
    if (shutdown_) return;
    // Least-loaded pick: the live task with the fewest helpers, so
    // concurrent callers split the workers instead of queuing behind the
    // oldest call. Among equally-loaded tasks, one hinted at this worker
    // wins — a shard that always hints the same id keeps its batches on the
    // same workers (and cores). Exhausted tasks are dropped from the list on
    // the way (their callers do not need them listed; `helpers` tracks
    // stragglers).
    TaskContext* task = nullptr;
    bool task_hinted = false;
    for (size_t i = 0; i < tasks_.size();) {
      if (tasks_[i]->exhausted()) {
        tasks_.erase(tasks_.begin() + static_cast<long>(i));
        continue;
      }
      const bool hinted = tasks_[i]->hint == worker_id;
      if (task == nullptr || tasks_[i]->helpers < task->helpers ||
          (tasks_[i]->helpers == task->helpers && hinted && !task_hinted)) {
        task = tasks_[i];
        task_hinted = hinted;
      }
      ++i;
    }
    if (task == nullptr) continue;  // everything drained; back to sleep
    ++task->helpers;
    lock.unlock();
    RunChunks(task, worker_id);
    lock.lock();
    if (--task->helpers == 0) done_cv_.notify_all();
  }
}

void ThreadPool::ParallelMorsel(int64_t begin, int64_t end, int64_t grain,
                                FunctionRef<void(int, int64_t, int64_t)> fn) {
  if (begin >= end) return;
  if (grain <= 0) grain = AdaptiveGrainFor(end - begin);
  TaskContext ctx(begin, end, grain, fn, caller_affinity_hint);
  int caller_id;
  {
    std::lock_guard<std::mutex> lock(mu_);
    caller_id = CallerIdLocked();
    ++callers_;
    tasks_.push_back(&ctx);
  }
  cv_.notify_all();
  // The caller participates in its own range, so the call makes progress
  // even when every worker is helping another caller (or after shutdown).
  const bool was_inside = inside_parallel_region;
  const int was_ambient = ambient_worker_id;
  inside_parallel_region = true;
  ambient_worker_id = caller_id;
  RunChunks(&ctx, caller_id);
  ambient_worker_id = was_ambient;
  inside_parallel_region = was_inside;
  // Unpublish the context, then wait for helpers still executing their last
  // claimed chunk; ctx must stay alive until the last one leaves.
  std::unique_lock<std::mutex> lock(mu_);
  auto it = std::find(tasks_.begin(), tasks_.end(), &ctx);
  if (it != tasks_.end()) tasks_.erase(it);
  done_cv_.wait(lock, [&] { return ctx.helpers == 0; });
  if (--callers_ == 0) done_cv_.notify_all();
}

void ThreadPool::ParallelFor(int64_t begin, int64_t end,
                             FunctionRef<void(int64_t)> fn) {
  ParallelMorsel(begin, end, /*grain=*/1,
                 [&fn](int /*worker*/, int64_t lo, int64_t hi) {
                   for (int64_t i = lo; i < hi; ++i) fn(i);
                 });
}

ThreadPool& GlobalPool() {
  static ThreadPool* pool = [] {
    ThreadPool::Options options;
    options.core_set = ConfiguredCoreSet();
    return new ThreadPool(std::move(options));
  }();
  return *pool;
}

void ParallelFor(int64_t begin, int64_t end, FunctionRef<void(int64_t)> fn) {
  if (begin >= end) return;
  if (inside_parallel_region || end - begin == 1) {
    for (int64_t i = begin; i < end; ++i) fn(i);
    return;
  }
  GlobalPool().ParallelFor(begin, end, fn);
}

void ParallelMorsel(int64_t begin, int64_t end, int64_t grain,
                    FunctionRef<void(int, int64_t, int64_t)> fn) {
  if (begin >= end) return;
  if (inside_parallel_region) {
    // Serial degradation preserves the chunking contract (chunks of at most
    // `grain`) so bodies sizing scratch by the grain stay correct.
    if (grain <= 0) {
      fn(ambient_worker_id, begin, end);
      return;
    }
    for (int64_t lo = begin; lo < end; lo += grain) {
      fn(ambient_worker_id, lo, std::min(lo + grain, end));
    }
    return;
  }
  GlobalPool().ParallelMorsel(begin, end, grain, fn);
}

void SetParallelAffinityHint(int worker_id) {
  caller_affinity_hint = worker_id < 0 ? -1 : worker_id;
}

int CurrentWorkerId() { return ambient_worker_id; }

}  // namespace dcam
