#include "util/parallel.h"

#include <algorithm>
#include <atomic>

namespace dcam {
namespace {

thread_local bool inside_parallel_region = false;

}  // namespace

ThreadPool::ThreadPool(int num_threads) {
  const int workers = num_threads > 1 ? num_threads - 1 : 0;
  workers_.reserve(workers);
  for (int i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
  // A ParallelFor racing the destructor finishes serially on its caller
  // (the workers are gone); wait for it to leave before the mutex dies.
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [&] { return callers_ == 0; });
}

void ThreadPool::WorkerLoop() {
  inside_parallel_region = true;
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    cv_.wait(lock, [&] { return shutdown_ || !tasks_.empty(); });
    if (shutdown_) return;
    // Least-loaded pick: the live task with the fewest helpers, so
    // concurrent callers split the workers instead of queuing behind the
    // oldest call. Exhausted tasks are dropped from the list on the way
    // (their callers do not need them listed; helpers_ tracks stragglers).
    TaskContext* task = nullptr;
    for (size_t i = 0; i < tasks_.size();) {
      if (tasks_[i]->exhausted()) {
        tasks_.erase(tasks_.begin() + i);
        continue;
      }
      if (task == nullptr || tasks_[i]->helpers < task->helpers) {
        task = tasks_[i];
      }
      ++i;
    }
    if (task == nullptr) continue;  // everything drained; back to sleep
    ++task->helpers;
    lock.unlock();
    int64_t i;
    while ((i = task->next.fetch_add(1, std::memory_order_relaxed)) <
           task->end) {
      (*task->fn)(i);
    }
    lock.lock();
    if (--task->helpers == 0) done_cv_.notify_all();
  }
}

void ThreadPool::ParallelFor(int64_t begin, int64_t end,
                             const std::function<void(int64_t)>& fn) {
  if (begin >= end) return;
  TaskContext ctx;
  ctx.end = end;
  ctx.fn = &fn;
  ctx.next.store(begin, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++callers_;
    tasks_.push_back(&ctx);
  }
  cv_.notify_all();
  // The caller participates in its own iteration range, so the call makes
  // progress even when every worker is helping another caller.
  const bool was_inside = inside_parallel_region;
  inside_parallel_region = true;
  int64_t i;
  while ((i = ctx.next.fetch_add(1, std::memory_order_relaxed)) < end) {
    fn(i);
  }
  inside_parallel_region = was_inside;
  // Unpublish the context, then wait for helpers still executing their last
  // claimed iteration; ctx must stay alive until the last one leaves.
  std::unique_lock<std::mutex> lock(mu_);
  auto it = std::find(tasks_.begin(), tasks_.end(), &ctx);
  if (it != tasks_.end()) tasks_.erase(it);
  done_cv_.wait(lock, [&] { return ctx.helpers == 0; });
  if (--callers_ == 0) done_cv_.notify_all();
}

ThreadPool& GlobalPool() {
  static ThreadPool* pool = [] {
    int n = static_cast<int>(std::thread::hardware_concurrency());
    if (n <= 0) n = 4;
    return new ThreadPool(n);
  }();
  return *pool;
}

void ParallelFor(int64_t begin, int64_t end,
                 const std::function<void(int64_t)>& fn) {
  if (begin >= end) return;
  if (inside_parallel_region || end - begin == 1) {
    for (int64_t i = begin; i < end; ++i) fn(i);
    return;
  }
  GlobalPool().ParallelFor(begin, end, fn);
}

}  // namespace dcam
