#include "util/parallel.h"

#include <atomic>

namespace dcam {
namespace {

thread_local bool inside_parallel_region = false;

}  // namespace

ThreadPool::ThreadPool(int num_threads) {
  const int workers = num_threads > 1 ? num_threads - 1 : 0;
  workers_.reserve(workers);
  for (int i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::WorkerLoop() {
  inside_parallel_region = true;
  uint64_t seen_epoch = 0;
  while (true) {
    Task task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [&] { return shutdown_ || epoch_ != seen_epoch; });
      if (shutdown_) return;
      seen_epoch = epoch_;
      task = task_;
      ++active_;
    }
    int64_t i;
    while ((i = task.next->fetch_add(1, std::memory_order_relaxed)) <
           task.end) {
      (*task.fn)(i);
    }
    {
      std::unique_lock<std::mutex> lock(mu_);
      --active_;
      if (task.remaining->fetch_sub(1, std::memory_order_acq_rel) == 1) {
        done_cv_.notify_all();
      }
    }
  }
}

void ThreadPool::ParallelFor(int64_t begin, int64_t end,
                             const std::function<void(int64_t)>& fn) {
  if (begin >= end) return;
  std::atomic<int64_t> next(begin);
  std::atomic<int> remaining(static_cast<int>(workers_.size()));
  {
    std::unique_lock<std::mutex> lock(mu_);
    task_.begin = begin;
    task_.end = end;
    task_.fn = &fn;
    task_.next = &next;
    task_.remaining = &remaining;
    ++epoch_;
  }
  cv_.notify_all();
  // The caller participates in the same iteration pool.
  const bool was_inside = inside_parallel_region;
  inside_parallel_region = true;
  int64_t i;
  while ((i = next.fetch_add(1, std::memory_order_relaxed)) < end) {
    fn(i);
  }
  inside_parallel_region = was_inside;
  // Wait for workers to drain; they may still be executing their last
  // iteration even though the counter is exhausted.
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [&] { return remaining.load() == 0; });
}

ThreadPool& GlobalPool() {
  static ThreadPool* pool = [] {
    int n = static_cast<int>(std::thread::hardware_concurrency());
    if (n <= 0) n = 4;
    return new ThreadPool(n);
  }();
  return *pool;
}

void ParallelFor(int64_t begin, int64_t end,
                 const std::function<void(int64_t)>& fn) {
  if (begin >= end) return;
  if (inside_parallel_region || end - begin == 1) {
    for (int64_t i = begin; i < end; ++i) fn(i);
    return;
  }
  GlobalPool().ParallelFor(begin, end, fn);
}

}  // namespace dcam
