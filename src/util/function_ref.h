// Non-owning callable reference.
//
// std::function is the wrong vehicle for a blocking parallel-for: every call
// type-erases into a heap-allocated (for capture-heavy lambdas) wrapper that
// exists only for the duration of the loop, and every iteration dispatches
// through its double indirection. FunctionRef pins the callable by pointer —
// two words, trivially copyable, no allocation — which is all a blocking
// primitive needs: the callee never outlives the caller's lambda.
//
// The referenced callable must outlive every invocation through the
// FunctionRef. Do not store a FunctionRef beyond the call that received it.

#ifndef DCAM_UTIL_FUNCTION_REF_H_
#define DCAM_UTIL_FUNCTION_REF_H_

#include <type_traits>
#include <utility>

namespace dcam {

template <typename Signature>
class FunctionRef;

template <typename R, typename... Args>
class FunctionRef<R(Args...)> {
 public:
  /// Binds any callable with a compatible signature. Intentionally implicit:
  /// call sites pass lambdas exactly as they passed them to std::function.
  template <typename F,
            typename = std::enable_if_t<
                !std::is_same<std::decay_t<F>, FunctionRef>::value &&
                std::is_invocable_r<R, F&, Args...>::value>>
  FunctionRef(F&& f)  // NOLINT(google-explicit-constructor)
      : obj_(const_cast<void*>(static_cast<const void*>(&f))),
        call_(&Invoke<std::remove_reference_t<F>>) {}

  R operator()(Args... args) const {
    return call_(obj_, std::forward<Args>(args)...);
  }

 private:
  template <typename F>
  static R Invoke(void* obj, Args... args) {
    return (*static_cast<F*>(obj))(std::forward<Args>(args)...);
  }

  void* obj_;
  R (*call_)(void*, Args...);
};

}  // namespace dcam

#endif  // DCAM_UTIL_FUNCTION_REF_H_
