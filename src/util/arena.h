// Bump-pointer scratch arena with worker-local instances.
//
// The hot loops of this repository (GEMM pack panels, per-flush engine
// transients) need short-lived scratch of stable size, thousands of times a
// second, from many threads at once. Generic heap allocation serves that
// poorly twice over: the allocator's synchronization shows up in the
// profile, and the bytes land wherever the allocator last cached them —
// which, under a multi-worker pool, means another core's cache. An Arena is
// the standard fix (cf. the per-query scratch of the SIGMOD-contest
// engines): allocation is a pointer bump into a thread-owned block, and
// because each worker thread keeps its own arena (ThisThreadArena), repeated
// morsels reuse the same warm, core-resident bytes — on a pinned worker the
// scratch never migrates between cores at all.
//
// Lifetime discipline: Allocate() returns memory valid until the enclosing
// ArenaScope rewinds (or Reset is called). Nothing is destructed — the arena
// hands out raw trivially-destructible storage only.

#ifndef DCAM_UTIL_ARENA_H_
#define DCAM_UTIL_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "util/check.h"

namespace dcam {

class Arena {
 public:
  /// Cache-line-and-vector-friendly default alignment for every allocation.
  static constexpr size_t kDefaultAlign = 64;

  /// Blocks grow in multiples of `min_block_bytes` (1 MiB default: big
  /// enough that a GEMM pack pair, the largest steady-state customer, fits
  /// in one block).
  explicit Arena(size_t min_block_bytes = size_t{1} << 20)
      : min_block_(min_block_bytes < kDefaultAlign ? kDefaultAlign
                                                   : min_block_bytes) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Returns `bytes` of uninitialized storage aligned to `align` (a power of
  /// two, at most kDefaultAlign — blocks themselves are aligned that much).
  void* Allocate(size_t bytes, size_t align = kDefaultAlign) {
    DCAM_CHECK_GT(align, 0u);
    DCAM_CHECK_LE(align, kDefaultAlign);
    DCAM_CHECK_EQ(align & (align - 1), 0u) << "alignment must be a power of 2";
    if (bytes == 0) bytes = 1;
    while (active_ < blocks_.size()) {
      Block& b = blocks_[active_];
      const size_t at = (b.used + align - 1) & ~(align - 1);
      if (at + bytes <= b.size) {
        b.used = at + bytes;
        return b.base + at;
      }
      // The current block is full for this request; later blocks (if any,
      // left over from a rewind) are tried next, else a fresh one is
      // appended. Blocks past a rewind mark hold no live data by definition.
      ++active_;
      if (active_ < blocks_.size()) blocks_[active_].used = 0;
    }
    size_t size = min_block_;
    while (size < bytes) size *= 2;
    blocks_.push_back(NewBlock(size));
    blocks_.back().used = bytes;
    active_ = blocks_.size() - 1;
    return blocks_.back().base;
  }

  float* AllocateFloats(size_t n) {
    return static_cast<float*>(Allocate(n * sizeof(float)));
  }
  int* AllocateInts(size_t n) {
    return static_cast<int*>(Allocate(n * sizeof(int)));
  }

  /// Opaque rewind point for ArenaScope.
  struct Mark {
    size_t block = 0;
    size_t used = 0;
  };

  Mark Position() const {
    Mark m;
    m.block = active_;
    m.used = active_ < blocks_.size() ? blocks_[active_].used : 0;
    return m;
  }

  /// Releases every allocation made after `m` (storage is retained for
  /// reuse). Marks must be rewound strictly LIFO — ArenaScope enforces it.
  void RewindTo(const Mark& m) {
    for (size_t i = m.block + 1; i < blocks_.size() && i <= active_; ++i) {
      blocks_[i].used = 0;
    }
    active_ = m.block;
    if (active_ < blocks_.size()) blocks_[active_].used = m.used;
  }

  /// Drops every allocation. When the arena had fragmented across several
  /// blocks, they are consolidated: the next Allocate carves from one block
  /// sized to the high-water mark, so steady-state reuse touches one
  /// contiguous span.
  void Reset() {
    if (blocks_.size() > 1) {
      size_t total = 0;
      for (const Block& b : blocks_) total += b.size;
      blocks_.clear();
      blocks_.push_back(NewBlock(total));
    } else if (!blocks_.empty()) {
      blocks_[0].used = 0;
    }
    active_ = 0;
  }

  /// Bytes currently live (allocated and not rewound).
  size_t bytes_allocated() const {
    size_t total = 0;
    for (size_t i = 0; i < blocks_.size() && i <= active_; ++i) {
      total += blocks_[i].used;
    }
    return total;
  }

  /// Bytes reserved from the system allocator.
  size_t bytes_reserved() const {
    size_t total = 0;
    for (const Block& b : blocks_) total += b.size;
    return total;
  }

 private:
  struct Block {
    std::unique_ptr<char[]> raw;  // owns base's storage (plus align slack)
    char* base = nullptr;         // kDefaultAlign-aligned start
    size_t size = 0;              // usable bytes at base
    size_t used = 0;
  };

  // new[] guarantees only max_align_t alignment; over-allocate by one
  // alignment quantum and round the base up by hand.
  static Block NewBlock(size_t size) {
    Block b;
    b.raw.reset(new char[size + kDefaultAlign]);
    const auto addr = reinterpret_cast<uintptr_t>(b.raw.get());
    const uintptr_t aligned = (addr + kDefaultAlign - 1) & ~uintptr_t{
        kDefaultAlign - 1};
    b.base = b.raw.get() + (aligned - addr);
    b.size = size;
    return b;
  }

  std::vector<Block> blocks_;
  size_t active_ = 0;
  size_t min_block_;
};

/// LIFO rewind guard: every allocation made while the scope is live is
/// released when it dies. The idiom for per-morsel scratch:
///
///   Arena& arena = ThisThreadArena();
///   ArenaScope scope(&arena);
///   float* pack = arena.AllocateFloats(n);   // freed by ~ArenaScope
class ArenaScope {
 public:
  explicit ArenaScope(Arena* arena) : arena_(arena), mark_(arena->Position()) {}
  ~ArenaScope() { arena_->RewindTo(mark_); }

  ArenaScope(const ArenaScope&) = delete;
  ArenaScope& operator=(const ArenaScope&) = delete;

 private:
  Arena* arena_;
  Arena::Mark mark_;
};

/// The calling thread's scratch arena. Pool workers, shard schedulers, and
/// external callers each get their own (created on first use, freed at
/// thread exit), so arena allocation is synchronization-free and the bytes
/// stay resident on the core the thread is pinned to.
inline Arena& ThisThreadArena() {
  thread_local Arena arena;
  return arena;
}

}  // namespace dcam

#endif  // DCAM_UTIL_ARENA_H_
