#include "util/mmap.h"

#include <cstring>
#include <fstream>
#include <utility>

#if defined(__unix__) || defined(__APPLE__)
#define DCAM_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#else
#define DCAM_HAVE_MMAP 0
#endif

namespace dcam {
namespace {

#if DCAM_HAVE_MMAP
int AdviceToMadv(MappedFile::Advice advice) {
  switch (advice) {
    case MappedFile::Advice::kSequential:
      return MADV_SEQUENTIAL;
    case MappedFile::Advice::kRandom:
      return MADV_RANDOM;
    case MappedFile::Advice::kWillNeed:
      return MADV_WILLNEED;
    case MappedFile::Advice::kNormal:
      break;
  }
  return MADV_NORMAL;
}
#endif

// Buffered fallback shared by off-POSIX builds and allow_mmap = false.
io::Status ReadWhole(const std::string& path,
                     std::unique_ptr<unsigned char[]>* buffer, size_t* size) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in.is_open()) {
    return io::Status::IoError("cannot open " + path);
  }
  const std::streamoff end = in.tellg();
  if (end < 0) {
    return io::Status::IoError("cannot stat " + path);
  }
  *size = static_cast<size_t>(end);
  if (*size == 0) {
    buffer->reset();
    return io::Status::Ok();
  }
  buffer->reset(new unsigned char[*size]);
  in.seekg(0);
  in.read(reinterpret_cast<char*>(buffer->get()),
          static_cast<std::streamsize>(*size));
  if (!in.good() && !in.eof()) {
    return io::Status::IoError("short read from " + path);
  }
  if (static_cast<size_t>(in.gcount()) != *size) {
    return io::Status::IoError("short read from " + path);
  }
  return io::Status::Ok();
}

}  // namespace

MappedFile::~MappedFile() { Close(); }

MappedFile::MappedFile(MappedFile&& other) noexcept
    : data_(other.data_),
      size_(other.size_),
      map_base_(other.map_base_),
      buffer_(std::move(other.buffer_)) {
  other.data_ = nullptr;
  other.size_ = 0;
  other.map_base_ = nullptr;
}

MappedFile& MappedFile::operator=(MappedFile&& other) noexcept {
  if (this != &other) {
    Close();
    data_ = other.data_;
    size_ = other.size_;
    map_base_ = other.map_base_;
    buffer_ = std::move(other.buffer_);
    other.data_ = nullptr;
    other.size_ = 0;
    other.map_base_ = nullptr;
  }
  return *this;
}

io::Status MappedFile::Open(const std::string& path, const Options& options,
                            MappedFile* out) {
  out->Close();
#if DCAM_HAVE_MMAP
  if (options.allow_mmap) {
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) {
      return io::Status::IoError("cannot open " + path);
    }
    struct stat st;
    if (::fstat(fd, &st) != 0) {
      ::close(fd);
      return io::Status::IoError("cannot stat " + path);
    }
    const size_t size = static_cast<size_t>(st.st_size);
    if (size == 0) {
      ::close(fd);
      out->size_ = 0;
      return io::Status::Ok();
    }
    // MAP_SHARED read-only: every process serving the same corpus shares one
    // page-cache copy. The fd can be closed immediately; the mapping keeps
    // the file alive.
    void* base = ::mmap(nullptr, size, PROT_READ, MAP_SHARED, fd, 0);
    ::close(fd);
    if (base != MAP_FAILED) {
      out->map_base_ = base;
      out->data_ = static_cast<const unsigned char*>(base);
      out->size_ = size;
      out->Advise(options.advice);
      return io::Status::Ok();
    }
    // mmap can legitimately fail (e.g. a filesystem without mmap support);
    // fall through to the buffered path rather than erroring.
  }
#endif
  io::Status status = ReadWhole(path, &out->buffer_, &out->size_);
  if (!status.ok()) {
    out->Close();
    return status;
  }
  out->data_ = out->buffer_.get();
  return io::Status::Ok();
}

void MappedFile::Advise(Advice advice) {
#if DCAM_HAVE_MMAP
  if (map_base_ != nullptr && advice != Advice::kNormal) {
    // Best-effort: a failed madvise changes performance, not correctness.
    (void)::madvise(map_base_, size_, AdviceToMadv(advice));
  }
#else
  (void)advice;
#endif
}

void MappedFile::Close() {
#if DCAM_HAVE_MMAP
  if (map_base_ != nullptr) {
    (void)::munmap(map_base_, size_);
  }
#endif
  map_base_ = nullptr;
  buffer_.reset();
  data_ = nullptr;
  size_ = 0;
}

}  // namespace dcam
