// Portable CPU-affinity wrapper.
//
// The morsel scheduler optionally pins its workers (and ExplainService pins
// its shard schedulers) to an explicit core set so repeated batches touch
// warm, core-resident scratch instead of bouncing it across whichever cores
// the kernel picks. Pinning is always best-effort: on platforms without
// pthread_setaffinity_np (or when a requested cpu is offline) the functions
// return false and execution proceeds unpinned — placement is a performance
// hint, never a correctness requirement.
//
// The core set comes from either ThreadPool::Options::core_set (explicit)
// or the DCAM_CPU_SET environment variable (deployment-side), a Linux
// taskset-style list: "0-3", "0,2,4", "0-1,6-7".

#ifndef DCAM_UTIL_AFFINITY_H_
#define DCAM_UTIL_AFFINITY_H_

#include <string>
#include <vector>

namespace dcam {

/// Parses a taskset-style cpu list ("0-3,8,10") into a sorted, deduplicated
/// vector of cpu ids. Returns an empty vector for an empty, malformed, or
/// negative-id spec (a malformed set must not silently pin to a wrong core).
std::vector<int> ParseCpuList(const std::string& spec);

/// The process-wide core set from DCAM_CPU_SET, parsed once at first use.
/// Empty when the variable is unset or unparsable.
const std::vector<int>& ConfiguredCoreSet();

/// True when the platform can pin threads at all (compile-time capability).
bool AffinitySupported();

/// Pins the calling thread to a single cpu. Returns false when unsupported
/// or when the kernel rejects the cpu (out of range, offline).
bool PinCurrentThreadToCpu(int cpu);

/// Pins the calling thread to a set of cpus (empty set: returns false).
bool PinCurrentThreadToSet(const std::vector<int>& cpus);

}  // namespace dcam

#endif  // DCAM_UTIL_AFFINITY_H_
