// FNV-1a 64-bit hashing, shared by weight-file checksums (io/serialize),
// dataset-name seeding (data/uea_like), and explanation cache keys
// (explain/). One copy of the constants and loop; callers that must keep a
// historical seed pass it explicitly.

#ifndef DCAM_UTIL_FNV_H_
#define DCAM_UTIL_FNV_H_

#include <cstddef>
#include <cstdint>

namespace dcam {

inline constexpr uint64_t kFnv1aOffsetBasis = 14695981039346656037ULL;
inline constexpr uint64_t kFnv1aPrime = 1099511628211ULL;

/// Folds `len` bytes into `h` (FNV-1a). Chainable: pass the previous return
/// value as `h` to hash a sequence of fields.
inline uint64_t Fnv1a(const void* data, size_t len,
                      uint64_t h = kFnv1aOffsetBasis) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= kFnv1aPrime;
  }
  return h;
}

}  // namespace dcam

#endif  // DCAM_UTIL_FNV_H_
