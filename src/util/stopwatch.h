// Wall-clock stopwatch used by the execution-time experiments (Figure 12).

#ifndef DCAM_UTIL_STOPWATCH_H_
#define DCAM_UTIL_STOPWATCH_H_

#include <chrono>

namespace dcam {

class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Restart timing from now.
  void Reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction or the last Reset().
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace dcam

#endif  // DCAM_UTIL_STOPWATCH_H_
