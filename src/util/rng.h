// Deterministic pseudo-random number generation.
//
// Every stochastic component of the library (weight init, dataset synthesis,
// permutation sampling, batch shuffling) draws from an explicitly seeded Rng
// so that experiments are reproducible bit-for-bit across runs.

#ifndef DCAM_UTIL_RNG_H_
#define DCAM_UTIL_RNG_H_

#include <cstdint>
#include <vector>

namespace dcam {

/// xoshiro256** generator seeded via SplitMix64. Small, fast, and good enough
/// for weight initialization and workload synthesis; not cryptographic.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Next raw 64-bit value.
  uint64_t Next();

  /// Uniform double in [0, 1).
  double Uniform();

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0.
  int64_t UniformInt(int64_t n);

  /// Standard normal via Box-Muller (cached second value).
  double Normal();

  /// Normal with the given mean / stddev.
  double Normal(double mean, double stddev);

  /// Fisher-Yates shuffle of [0, n) indices.
  std::vector<int> Permutation(int n);

  /// Allocation-free variant: writes the shuffled [0, n) indices into `out`
  /// (resized to n). Draws the same stream as Permutation.
  void PermutationInto(int n, std::vector<int>* out);

  /// In-place Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (int i = static_cast<int>(v->size()) - 1; i > 0; --i) {
      int j = static_cast<int>(UniformInt(i + 1));
      std::swap((*v)[i], (*v)[j]);
    }
  }

  /// Derive an independent child generator (for per-worker streams).
  Rng Fork();

 private:
  uint64_t state_[4];
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace dcam

#endif  // DCAM_UTIL_RNG_H_
