// Read-only memory-mapped files.
//
// MappedFile is the zero-copy substrate for the on-disk series store
// (data/store): on POSIX hosts the file is mapped MAP_SHARED | PROT_READ so
// opening a multi-gigabyte corpus costs page-table setup, not a read into
// heap, and the kernel's page cache is shared across every process mapping
// the same corpus. madvise hints (sequential for the one-pass checksum
// verification, random for point lookups under skewed traffic) are applied
// best-effort.
//
// Off-POSIX builds — and callers that set Options::allow_mmap = false, which
// the tests use to exercise the path — fall back to a plain buffered read
// into an owned heap block. The accessor surface is identical either way;
// mapped() reports which path was taken so benchmarks can label their
// numbers honestly.

#ifndef DCAM_UTIL_MMAP_H_
#define DCAM_UTIL_MMAP_H_

#include <cstddef>
#include <memory>
#include <string>

#include "io/status.h"

namespace dcam {

class MappedFile {
 public:
  enum class Advice {
    kNormal,      // no hint
    kSequential,  // one front-to-back pass (checksum verification)
    kRandom,      // point lookups (skewed-popularity serving)
    kWillNeed,    // prefault eagerly
  };

  struct Options {
    /// false forces the buffered-read fallback even where mmap is available.
    bool allow_mmap = true;
    Advice advice = Advice::kNormal;
  };

  MappedFile() = default;
  ~MappedFile();

  MappedFile(MappedFile&& other) noexcept;
  MappedFile& operator=(MappedFile&& other) noexcept;
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

  /// Opens `path` read-only. On success `out` exposes the file bytes (empty
  /// files yield size() == 0 with a null pointer). Any previous contents of
  /// `out` are released first.
  static io::Status Open(const std::string& path, const Options& options,
                         MappedFile* out);
  static io::Status Open(const std::string& path, MappedFile* out) {
    return Open(path, Options(), out);
  }

  const unsigned char* data() const { return data_; }
  size_t size() const { return size_; }

  /// True when the bytes are a zero-copy mmap; false when the fallback read
  /// them into an owned buffer (or nothing is open).
  bool mapped() const { return map_base_ != nullptr; }

  /// Re-advises the kernel about the expected access pattern. Best-effort
  /// no-op on the fallback path and off-POSIX.
  void Advise(Advice advice);

  /// Unmaps / frees. Idempotent.
  void Close();

 private:
  const unsigned char* data_ = nullptr;
  size_t size_ = 0;
  void* map_base_ = nullptr;  // non-null only on the mmap path
  std::unique_ptr<unsigned char[]> buffer_;  // non-null only on the fallback
};

}  // namespace dcam

#endif  // DCAM_UTIL_MMAP_H_
