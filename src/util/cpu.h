// Cached host-CPU feature detection and kernel-backend selection.
//
// The GEMM layer (tensor/gemm, tensor/gemm_bf16) dispatches its microkernels
// through a per-process backend chosen here, instead of sprinkling
// __builtin_cpu_supports probes through every inner loop. Detection runs
// exactly once; the selected backend is queryable (ActiveKernelBackendName)
// and logged to stderr on first use so a bench or CI log always states which
// code path produced its numbers.
//
// CI coverage on heterogeneous runners comes from the DCAM_FORCE_BACKEND
// environment variable: setting it to "portable" on an AVX2 host exercises
// the scalar/vector-extension path; setting it to "avx2" on a host without
// AVX2+FMA aborts loudly instead of executing illegal instructions. The
// override is read once, before the first GEMM call caches the backend.

#ifndef DCAM_UTIL_CPU_H_
#define DCAM_UTIL_CPU_H_

#include <string>

namespace dcam {

/// The ISA features the kernel layer cares about, probed once per process.
struct CpuFeatures {
  bool avx2 = false;
  bool fma = false;
  bool avx512f = false;
};

/// Host features, detected on first call and cached. Always all-false on
/// non-x86-64 targets or compilers without __builtin_cpu_supports.
const CpuFeatures& HostCpuFeatures();

/// The ISA lane the GEMM microkernels dispatch through. kAvx2 requires both
/// AVX2 and FMA (the 16-wide kernels use fused multiply-add throughout).
/// AVX-512 is probed and reported but has no dedicated kernels yet; hosts
/// with it run the AVX2 lane.
enum class KernelBackend {
  kPortable = 0,
  kAvx2 = 1,
};

/// Stable lowercase name ("portable", "avx2") — the same strings accepted by
/// DCAM_FORCE_BACKEND and emitted in bench_micro --json "backend" fields.
const char* KernelBackendName(KernelBackend backend);

/// Pure resolution, exposed for tests: picks the widest backend `features`
/// supports, unless `forced` (the DCAM_FORCE_BACKEND value) names one
/// explicitly. An empty `forced` means auto. Aborts (DCAM_CHECK) when
/// `forced` names an unknown backend or one the features cannot run.
KernelBackend ResolveKernelBackend(const CpuFeatures& features,
                                   const std::string& forced);

/// The process-wide backend: ResolveKernelBackend(HostCpuFeatures(),
/// getenv("DCAM_FORCE_BACKEND")), computed once on first call and logged to
/// stderr. Every GEMM entry point routes through this.
KernelBackend ActiveKernelBackend();

/// KernelBackendName(ActiveKernelBackend()).
const char* ActiveKernelBackendName();

}  // namespace dcam

#endif  // DCAM_UTIL_CPU_H_
