// Lightweight assertion macros used across the library.
//
// DCAM_CHECK is enabled in all build types: shape and invariant violations in
// a numerical library are programming errors that must never be silently
// ignored, and their cost is negligible relative to the surrounding
// arithmetic.

#ifndef DCAM_UTIL_CHECK_H_
#define DCAM_UTIL_CHECK_H_

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace dcam {
namespace internal {

[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* expr,
                                     const std::string& message) {
  std::fprintf(stderr, "DCAM_CHECK failed at %s:%d: %s %s\n", file, line, expr,
               message.c_str());
  std::abort();
}

// Stream collector so call sites can write DCAM_CHECK(x) << "context".
class CheckStream {
 public:
  CheckStream(const char* file, int line, const char* expr)
      : file_(file), line_(line), expr_(expr) {}
  [[noreturn]] ~CheckStream() { CheckFailed(file_, line_, expr_, out_.str()); }

  template <typename T>
  CheckStream& operator<<(const T& value) {
    out_ << value;
    return *this;
  }

 private:
  const char* file_;
  int line_;
  const char* expr_;
  std::ostringstream out_;
};

}  // namespace internal
}  // namespace dcam

#define DCAM_CHECK(condition)                                       \
  if (condition) {                                                  \
  } else                                                            \
    ::dcam::internal::CheckStream(__FILE__, __LINE__, #condition)

#define DCAM_CHECK_EQ(a, b) DCAM_CHECK((a) == (b)) << " (" << (a) << " vs " << (b) << ") "
#define DCAM_CHECK_NE(a, b) DCAM_CHECK((a) != (b)) << " (" << (a) << " vs " << (b) << ") "
#define DCAM_CHECK_LT(a, b) DCAM_CHECK((a) < (b)) << " (" << (a) << " vs " << (b) << ") "
#define DCAM_CHECK_LE(a, b) DCAM_CHECK((a) <= (b)) << " (" << (a) << " vs " << (b) << ") "
#define DCAM_CHECK_GT(a, b) DCAM_CHECK((a) > (b)) << " (" << (a) << " vs " << (b) << ") "
#define DCAM_CHECK_GE(a, b) DCAM_CHECK((a) >= (b)) << " (" << (a) << " vs " << (b) << ") "

#endif  // DCAM_UTIL_CHECK_H_
