#include "util/cpu.h"

#include <cstdio>
#include <cstdlib>

#include "util/check.h"

namespace dcam {
namespace {

#if defined(__x86_64__) && defined(__GNUC__)
#define DCAM_CPU_CAN_PROBE 1
#else
#define DCAM_CPU_CAN_PROBE 0
#endif

CpuFeatures ProbeHost() {
  CpuFeatures f;
#if DCAM_CPU_CAN_PROBE
  f.avx2 = __builtin_cpu_supports("avx2");
  f.fma = __builtin_cpu_supports("fma");
  f.avx512f = __builtin_cpu_supports("avx512f");
#endif
  return f;
}

}  // namespace

const CpuFeatures& HostCpuFeatures() {
  static const CpuFeatures features = ProbeHost();
  return features;
}

const char* KernelBackendName(KernelBackend backend) {
  switch (backend) {
    case KernelBackend::kPortable:
      return "portable";
    case KernelBackend::kAvx2:
      return "avx2";
  }
  return "portable";
}

KernelBackend ResolveKernelBackend(const CpuFeatures& features,
                                   const std::string& forced) {
  if (forced.empty()) {
    return features.avx2 && features.fma ? KernelBackend::kAvx2
                                         : KernelBackend::kPortable;
  }
  if (forced == "portable") return KernelBackend::kPortable;
  if (forced == "avx2") {
    DCAM_CHECK(features.avx2 && features.fma)
        << "DCAM_FORCE_BACKEND=avx2 but this host lacks AVX2+FMA";
    return KernelBackend::kAvx2;
  }
  DCAM_CHECK(false) << "unknown DCAM_FORCE_BACKEND \"" << forced
                    << "\" (expected \"portable\" or \"avx2\")";
  return KernelBackend::kPortable;
}

KernelBackend ActiveKernelBackend() {
  static const KernelBackend backend = [] {
    const char* env = std::getenv("DCAM_FORCE_BACKEND");
    const std::string forced = env == nullptr ? "" : env;
    const KernelBackend chosen =
        ResolveKernelBackend(HostCpuFeatures(), forced);
    std::fprintf(stderr, "dcam: gemm backend %s%s\n",
                 KernelBackendName(chosen),
                 forced.empty() ? "" : " (forced via DCAM_FORCE_BACKEND)");
    return chosen;
  }();
  return backend;
}

const char* ActiveKernelBackendName() {
  return KernelBackendName(ActiveKernelBackend());
}

}  // namespace dcam
