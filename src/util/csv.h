// Tiny CSV/table emitter used by the benchmark harnesses to print the rows
// and series the paper's tables and figures report.

#ifndef DCAM_UTIL_CSV_H_
#define DCAM_UTIL_CSV_H_

#include <ostream>
#include <string>
#include <vector>

namespace dcam {

/// Accumulates rows of strings and renders either CSV or an aligned text
/// table. All cells are stored as strings; numeric helpers format with a
/// fixed precision so benchmark output is stable across runs of equal data.
class TableWriter {
 public:
  explicit TableWriter(std::vector<std::string> header);

  /// Starts a new row. Cells are appended with Cell().
  void BeginRow();

  void Cell(const std::string& value);
  void Cell(const char* value);
  void Cell(double value, int precision = 3);
  void Cell(int64_t value);
  void Cell(int value);

  /// Renders as comma-separated values (header first).
  void WriteCsv(std::ostream& os) const;

  /// Renders as an aligned, human-readable table.
  void WriteAligned(std::ostream& os) const;

  int num_rows() const { return static_cast<int>(rows_.size()); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with fixed precision (helper shared with benches).
std::string FormatDouble(double value, int precision = 3);

}  // namespace dcam

#endif  // DCAM_UTIL_CSV_H_
