// Injectable monotonic time source.
//
// ExplainService deadlines and queue-delay accounting are defined against
// std::chrono::steady_clock, but wall-clock tests of deadline expiry are
// inherently flaky: the test cannot control how long a request sits queued.
// MonotonicClock abstracts "now" behind a virtual so the service can be
// handed a ManualClock whose time advances only when the test says so,
// making "this request's deadline passed while it was queued" a
// deterministic statement instead of a sleep race.

#ifndef DCAM_UTIL_CLOCK_H_
#define DCAM_UTIL_CLOCK_H_

#include <atomic>
#include <chrono>
#include <cstdint>

namespace dcam {

/// A monotonic "now". Implementations must be safe to call from any thread.
class MonotonicClock {
 public:
  using time_point = std::chrono::steady_clock::time_point;
  using duration = std::chrono::steady_clock::duration;

  virtual ~MonotonicClock() = default;
  virtual time_point Now() const = 0;
};

/// The real steady clock. Stateless; one shared instance via Get().
class RealClock final : public MonotonicClock {
 public:
  time_point Now() const override { return std::chrono::steady_clock::now(); }

  static const RealClock* Get() {
    static const RealClock clock;
    return &clock;
  }
};

/// A clock that only moves when told to. Starts at the real steady_clock
/// "now" so deadlines built against either clock are comparable; Advance is
/// the only way time passes afterwards. Thread-safe (a single atomic).
class ManualClock final : public MonotonicClock {
 public:
  ManualClock() : ManualClock(std::chrono::steady_clock::now()) {}
  explicit ManualClock(time_point start)
      : ns_(std::chrono::duration_cast<std::chrono::nanoseconds>(
                start.time_since_epoch())
                .count()) {}

  time_point Now() const override {
    return time_point(std::chrono::duration_cast<duration>(
        std::chrono::nanoseconds(ns_.load(std::memory_order_acquire))));
  }

  void Advance(duration d) {
    ns_.fetch_add(
        std::chrono::duration_cast<std::chrono::nanoseconds>(d).count(),
        std::memory_order_acq_rel);
  }

 private:
  std::atomic<int64_t> ns_;  // nanoseconds since the steady-clock epoch
};

}  // namespace dcam

#endif  // DCAM_UTIL_CLOCK_H_
