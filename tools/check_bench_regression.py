#!/usr/bin/env python3
"""Bench-regression gate over bench_micro --json output.

Compares a fresh `bench_micro --json` run against the checked-in baseline
(BENCH_dcam.json) record-by-record — records are keyed by (op, shape) — and
fails (exit 1) if any matched benchmark got slower than the tolerance allows:

    current_ns > baseline_ns * max_ratio

The baseline is refreshed in the same PR whenever a kernel change moves the
numbers on purpose; the default tolerance is deliberately loose because the
baseline host and the CI runner differ (the gate exists to catch order-of-
magnitude mistakes — an accidentally-serialized ParallelFor, a kernel
falling off its fast path — not 10%% noise).

Only needs the Python 3 standard library.

Usage:
    ./build/bench_micro --benchmark_filter='MatMul|Conv|ComputeDcam' \\
        --json bench_micro.json
    python3 tools/check_bench_regression.py \\
        --baseline BENCH_dcam.json --current bench_micro.json
"""

import argparse
import json
import re
import sys


def load(path):
    with open(path) as f:
        data = json.load(f)
    rows = {}
    for row in data.get("benchmarks", []):
        rows[(row["op"], row.get("shape", ""))] = row
    return rows


def fmt_ns(ns):
    if ns >= 1e9:
        return "%.2fs" % (ns / 1e9)
    if ns >= 1e6:
        return "%.2fms" % (ns / 1e6)
    if ns >= 1e3:
        return "%.1fus" % (ns / 1e3)
    return "%.0fns" % ns


def main():
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter
    )
    parser.add_argument("--baseline", required=True, help="checked-in baseline json")
    parser.add_argument("--current", required=True, help="fresh bench_micro --json run")
    parser.add_argument(
        "--max-ratio",
        type=float,
        default=2.5,
        help="fail when current/baseline ns_per_iter exceeds this (default %(default)s)",
    )
    parser.add_argument(
        "--ops",
        default=".*",
        help="regex over the op name selecting which benchmarks are gated",
    )
    parser.add_argument(
        "--require-match",
        action="store_true",
        help="also fail when a gated baseline op/shape is missing from the current run",
    )
    args = parser.parse_args()

    baseline = load(args.baseline)
    current = load(args.current)
    op_re = re.compile(args.ops)

    failures = []
    missing = []
    print(
        "%-34s %-16s %12s %12s %8s" % ("op", "shape", "baseline", "current", "ratio")
    )
    print("-" * 86)
    for key in sorted(baseline):
        op, shape = key
        if not op_re.search(op):
            continue
        base_ns = baseline[key]["ns_per_iter"]
        cur = current.get(key)
        if cur is None:
            missing.append(key)
            print("%-34s %-16s %12s %12s %8s" % (op, shape, fmt_ns(base_ns), "-", "-"))
            continue
        cur_ns = cur["ns_per_iter"]
        ratio = cur_ns / base_ns if base_ns > 0 else float("inf")
        flag = ""
        if ratio > args.max_ratio:
            failures.append((key, ratio))
            flag = "  <-- REGRESSION"
        print(
            "%-34s %-16s %12s %12s %7.2fx%s"
            % (op, shape, fmt_ns(base_ns), fmt_ns(cur_ns), ratio, flag)
        )

    new_keys = [k for k in current if k not in baseline and op_re.search(k[0])]
    for key in sorted(new_keys):
        print(
            "%-34s %-16s %12s %12s %8s"
            % (key[0], key[1], "-", fmt_ns(current[key]["ns_per_iter"]), "new")
        )

    print("-" * 86)
    if missing:
        print(
            "note: %d baseline benchmark(s) missing from the current run" % len(missing)
        )
        if args.require_match:
            for key in missing:
                print("  missing: %s/%s" % key)
            return 1
    if failures:
        print(
            "FAIL: %d benchmark(s) regressed beyond %.2fx:" % (len(failures), args.max_ratio)
        )
        for (op, shape), ratio in failures:
            print("  %s/%s is %.2fx the baseline" % (op, shape, ratio))
        return 1
    print(
        "OK: %d gated benchmark(s) within %.2fx of baseline"
        % (len(baseline) - len(missing), args.max_ratio)
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
