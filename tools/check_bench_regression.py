#!/usr/bin/env python3
"""Bench-regression gate over bench_micro/bench_service --json output.

Compares fresh `--json` runs against the checked-in baseline
(BENCH_dcam.json) record-by-record — records are keyed by (op, shape) — and
fails (exit 1) if any matched benchmark got slower than the tolerance allows:

    current_ns > baseline_ns * max_ratio

A baseline record may carry its own "max_ratio" field overriding the global
tolerance (used for the wall-clock service-throughput benches, which are
noisier than the steady-state micro kernels).

Records where lower is NOT better — bench_workload's throughput and load-
bandwidth rows — store their measurement as

    "value": 123.4, "unit": "rps", "higher_is_better": true

instead of "ns_per_iter", and the ratio test inverts: the gate fails when
baseline / current exceeds max_ratio, i.e. when the current run's
throughput dropped to less than 1/max_ratio of the baseline. The same
loose-tolerance philosophy applies — these rows catch a collapsed pipeline,
not noise.

A baseline record may also declare a cross-row claim with

    "min_speedup_vs": "BM_Other/shape", "min_speedup": 1.2

which is checked *within the current run* (never against the baseline
host): current_ns(BM_Other/shape) / current_ns(this row) must be at least
min_speedup. This is how structural wins are gated — e.g. the morsel
scatter must stay faster than per-iteration claiming on whatever machine CI
runs on, regardless of absolute nanoseconds.

Key mismatches are never silent: a baseline record missing from the current
run, or a current record missing from the baseline, each print a WARNING line
(typically a renamed/removed bench, or a new bench whose row still needs to
be added to BENCH_dcam.json). Warnings exit 0 unless --require-match.

The baseline is refreshed in the same PR whenever a kernel change moves the
numbers on purpose; the default tolerance is deliberately loose because the
baseline host and the CI runner differ (the gate exists to catch order-of-
magnitude mistakes — an accidentally-serialized ParallelFor, a kernel
falling off its fast path — not 10%% noise).

Only needs the Python 3 standard library.

Usage:
    ./build/bench_micro --benchmark_filter='MatMul|Conv|ComputeDcam' \\
        --json bench_micro.json
    ./build/bench_service --json bench_service.json
    python3 tools/check_bench_regression.py --baseline BENCH_dcam.json \\
        --current bench_micro.json --current bench_service.json
"""

import argparse
import json
import re
import sys


def load(path):
    with open(path) as f:
        data = json.load(f)
    rows = {}
    for row in data.get("benchmarks", []):
        rows[(row["op"], row.get("shape", ""))] = row
    return rows


def fmt_ns(ns):
    if ns >= 1e9:
        return "%.2fs" % (ns / 1e9)
    if ns >= 1e6:
        return "%.2fms" % (ns / 1e6)
    if ns >= 1e3:
        return "%.1fus" % (ns / 1e3)
    return "%.0fns" % ns


def value_of(row):
    """The row's measurement: ns_per_iter classically, "value" otherwise."""
    return row["ns_per_iter"] if "ns_per_iter" in row else row["value"]


def backend_of(row):
    """The kernel backend the row was measured with ("portable"/"avx2"/
    "bf16"); older baselines predate the field and print "-"."""
    return row.get("backend", "-")


def fmt_row(row):
    if "ns_per_iter" in row:
        return fmt_ns(row["ns_per_iter"])
    return "%.1f%s" % (row["value"], row.get("unit", ""))


def main():
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter
    )
    parser.add_argument("--baseline", required=True, help="checked-in baseline json")
    parser.add_argument(
        "--current",
        required=True,
        action="append",
        help="fresh --json run; repeat the flag to merge several files "
        "(bench_micro + bench_service)",
    )
    parser.add_argument(
        "--max-ratio",
        type=float,
        default=2.5,
        help="fail when current/baseline ns_per_iter exceeds this "
        "(default %(default)s; per-record \"max_ratio\" in the baseline wins)",
    )
    parser.add_argument(
        "--ops",
        default=".*",
        help="regex over the op name selecting which benchmarks are gated",
    )
    parser.add_argument(
        "--require-match",
        action="store_true",
        help="turn the key-mismatch warnings (either direction) into failures",
    )
    args = parser.parse_args()

    baseline = load(args.baseline)
    current = {}
    duplicates = []
    for path in args.current:
        for key, row in load(path).items():
            if key in current:
                duplicates.append(key)
            current[key] = row
    op_re = re.compile(args.ops)

    failures = []
    missing = []
    gated = 0
    print(
        "%-34s %-16s %-9s %12s %12s %8s"
        % ("op", "shape", "backend", "baseline", "current", "ratio")
    )
    print("-" * 96)
    for key in sorted(baseline):
        op, shape = key
        if not op_re.search(op):
            continue
        gated += 1
        base_row = baseline[key]
        base_val = value_of(base_row)
        higher_is_better = base_row.get("higher_is_better", False)
        max_ratio = base_row.get("max_ratio", args.max_ratio)
        cur = current.get(key)
        if cur is None:
            missing.append(key)
            print(
                "%-34s %-16s %-9s %12s %12s %8s"
                % (op, shape, backend_of(base_row), fmt_row(base_row), "-", "-")
            )
            continue
        cur_val = value_of(cur)
        # "ratio" is always degradation: time growth for lower-is-better
        # rows, throughput shrinkage for higher-is-better ones.
        if higher_is_better:
            ratio = base_val / cur_val if cur_val > 0 else float("inf")
        else:
            ratio = cur_val / base_val if base_val > 0 else float("inf")
        flag = ""
        if ratio > max_ratio:
            failures.append((key, ratio, max_ratio))
            flag = "  <-- REGRESSION (limit %.2fx)" % max_ratio
        print(
            "%-34s %-16s %-9s %12s %12s %7.2fx%s"
            % (op, shape, backend_of(cur), fmt_row(base_row), fmt_row(cur),
               ratio, flag)
        )

    # Cross-row claims: both rows come from the *current* run, so the check
    # is host-independent (the whole point — it gates a structural speedup,
    # not an absolute time).
    speedup_failures = []
    for key in sorted(baseline):
        ref_name = baseline[key].get("min_speedup_vs")
        if ref_name is None or not op_re.search(key[0]):
            continue
        min_speedup = baseline[key].get("min_speedup", 1.0)
        ref_key = tuple(ref_name.split("/", 1)) if "/" in ref_name else (ref_name, "")
        cur = current.get(key)
        ref = current.get(ref_key)
        if cur is None or ref is None:
            absent = key if cur is None else ref_key
            if absent not in missing:
                missing.append(absent)
            continue
        speedup = (
            value_of(ref) / value_of(cur) if value_of(cur) > 0 else float("inf")
        )
        flag = ""
        if speedup < min_speedup:
            speedup_failures.append((key, ref_key, speedup, min_speedup))
            flag = "  <-- BELOW MINIMUM"
        print(
            "%s/%s vs %s/%s: %.2fx speedup (min %.2fx)%s"
            % (key[0], key[1], ref_key[0], ref_key[1], speedup, min_speedup, flag)
        )

    new_keys = sorted(k for k in current if k not in baseline and op_re.search(k[0]))
    for key in new_keys:
        print(
            "%-34s %-16s %-9s %12s %12s %8s"
            % (key[0], key[1], backend_of(current[key]), "-",
               fmt_row(current[key]), "new")
        )

    print("-" * 96)
    mismatched = False
    for key in duplicates:
        mismatched = True
        print(
            "WARNING: %s/%s appears in more than one --current file "
            "(last one wins the merge)" % key
        )
    for key in missing:
        mismatched = True
        print(
            "WARNING: baseline benchmark %s/%s missing from the current run "
            "(renamed or removed? refresh BENCH_dcam.json)" % key
        )
    for key in new_keys:
        mismatched = True
        print(
            "WARNING: new benchmark %s/%s has no baseline "
            "(add its row to BENCH_dcam.json)" % key
        )
    if failures or speedup_failures:
        print(
            "FAIL: %d benchmark(s) regressed, %d cross-row claim(s) violated:"
            % (len(failures), len(speedup_failures))
        )
        for (op, shape), ratio, limit in failures:
            print(
                "  %s/%s degraded %.2fx vs the baseline (limit %.2fx)"
                % (op, shape, ratio, limit)
            )
        for (op, shape), (rop, rshape), speedup, minimum in speedup_failures:
            print(
                "  %s/%s is only %.2fx faster than %s/%s (minimum %.2fx)"
                % (op, shape, speedup, rop, rshape, minimum)
            )
        return 1
    if mismatched and args.require_match:
        print("FAIL: key mismatches above and --require-match is set")
        return 1
    print(
        "OK: %d gated benchmark(s) within tolerance%s"
        % (
            gated - len(missing),
            ", with %d key-mismatch warning(s)"
            % (len(missing) + len(new_keys) + len(duplicates))
            if mismatched
            else "",
        )
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
